"""Tests for LLAMA-lite (pages, engine, cleaner) and the DFC copy model."""

import pytest

from repro.errors import ReproError
from repro.host import DfcPlatform, HostWriteExperiment
from repro.host.platform import DfcSpec
from repro.llama import DeltaPage, LlamaConfig, LlamaEngine
from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, OpenChannelSSD
from repro.ox import EleosConfig, MediaManager, OXEleos
from repro.units import KIB, MIB


def make_engine(groups=2, pus=2, chunks=16, pages=12,
                llama_config=None):
    geometry = DeviceGeometry(
        num_groups=groups, pus_per_group=pus,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=pages))
    device = OpenChannelSSD(geometry=geometry)
    media = MediaManager(device)
    ftl = OXEleos.format(media, EleosConfig(buffer_bytes=1 * MIB,
                                            wal_chunk_count=4,
                                            ckpt_chunks_per_slot=2))
    return device, ftl, LlamaEngine(ftl, llama_config or LlamaConfig())


class TestDeltaPage:
    def test_materialize_concatenates_deltas(self):
        page = DeltaPage(pid=1, base=b"base")
        page.apply_delta(b"+d1")
        page.apply_delta(b"+d2")
        assert page.materialize() == b"base+d1+d2"

    def test_consolidate_folds_chain(self):
        page = DeltaPage(pid=1, base=b"base")
        page.apply_delta(b"+d")
        page.consolidate()
        assert page.base == b"base+d"
        assert page.chain_length == 0

    def test_serialize_roundtrip(self):
        page = DeltaPage(pid=9, base=b"the-base")
        page.apply_delta(b"delta-one")
        page.apply_delta(b"")
        blob = page.serialize()
        restored = DeltaPage.deserialize(9, blob)
        assert restored.base == b"the-base"
        assert restored.deltas == [b"delta-one", b""]
        assert restored.materialize() == page.materialize()

    def test_corrupt_blob_rejected(self):
        with pytest.raises(ReproError):
            DeltaPage.deserialize(1, b"\xff\xff\xff\xff")


class TestLlamaEngine:
    def test_update_flush_read(self):
        __, __f, engine = make_engine()
        engine.replace(1, b"content-one")
        engine.update(1, b"+delta")
        engine.flush()
        assert engine.read(1) == b"content-one+delta"

    def test_read_miss_fetches_from_ftl(self):
        __, ftl, engine = make_engine()
        engine.replace(2, b"persisted")
        engine.flush()
        engine._cache.clear()     # force a miss
        assert engine.read(2) == b"persisted"
        assert engine.stats.cache_misses == 1

    def test_consolidation_threshold(self):
        __, __f, engine = make_engine(
            llama_config=LlamaConfig(consolidate_after=3))
        for i in range(3):
            engine.update(5, bytes([65 + i]))
        assert engine.stats.consolidations == 1
        assert engine.read(5) == b"ABC"

    def test_flush_only_dirty_pages(self):
        __, ftl, engine = make_engine()
        engine.replace(1, b"one")
        engine.flush()
        pages_before = engine.stats.pages_flushed
        engine.replace(2, b"two")
        engine.flush()
        assert engine.stats.pages_flushed == pages_before + 1

    def test_flush_returns_none_when_clean(self):
        __, __f, engine = make_engine()
        assert engine.flush() is None

    def test_cleaner_relocates_live_pages_and_frees_segment(self):
        __, ftl, engine = make_engine(
            llama_config=LlamaConfig(clean_live_ratio=0.9))
        for pid in range(10):
            engine.replace(pid, bytes([pid]) * 200)
        seg1 = engine.flush()
        for pid in range(8):         # rewrite most pages -> seg1 mostly dead
            engine.replace(pid, bytes([pid + 100]) * 200)
        engine.flush()
        assert engine.segment_live_ratio(seg1) == pytest.approx(0.2)
        cleaned = engine.clean_once()
        assert cleaned == seg1
        assert seg1 not in ftl.segments
        # Live pages 8 and 9 relocated and still readable.
        assert engine.read(8) == bytes([8]) * 200
        assert engine.read(9) == bytes([9]) * 200
        assert engine.stats.pages_relocated == 2

    def test_cleaner_skips_hot_segments(self):
        __, __f, engine = make_engine(
            llama_config=LlamaConfig(clean_live_ratio=0.5))
        for pid in range(4):
            engine.replace(pid, b"live" * 50)
        engine.flush()
        assert engine.clean_once() is None

    def test_cache_eviction_respects_capacity(self):
        __, __f, engine = make_engine(
            llama_config=LlamaConfig(cache_capacity=4))
        for pid in range(10):
            engine.replace(pid, bytes([pid]) * 64)
        engine.flush()
        assert len(engine._cache) <= 4
        # Evicted pages still readable through the FTL.
        assert engine.read(0) == b"\x00" * 64


class TestCopyModel:
    def make_experiment(self, **spec_overrides):
        geometry = DeviceGeometry(
            num_groups=4, pus_per_group=4,
            flash=FlashGeometry(blocks_per_plane=32, pages_per_block=24))
        device = OpenChannelSSD(geometry=geometry)
        media = MediaManager(device)
        ftl = OXEleos.format(media, EleosConfig(
            buffer_bytes=2 * MIB, wal_chunk_count=16, ckpt_chunks_per_slot=2))
        spec = DfcSpec(**spec_overrides) if spec_overrides else DfcSpec()
        platform = DfcPlatform(device.sim, spec)
        return HostWriteExperiment(ftl, platform, buffer_bytes=512 * KIB,
                                   page_bytes=32 * KIB)

    def test_copy_time_scales_with_bytes(self):
        experiment = self.make_experiment()
        platform = experiment.platform
        assert platform.copy_time(2 * platform.spec.memcpy_bandwidth) \
            == pytest.approx(2.0)

    def test_utilization_grows_then_saturates(self):
        experiment = self.make_experiment()
        utilizations = {}
        for threads in (1, 2, 8):
            result = experiment.run(threads, buffers_per_thread=4)
            utilizations[threads] = result.cpu_utilization
        assert utilizations[1] < utilizations[2] <= 1.0
        assert utilizations[8] <= 1.0
        # Saturation: going 2 -> 8 threads gains far less than 1 -> 2.
        gain_12 = utilizations[2] - utilizations[1]
        gain_28 = utilizations[8] - utilizations[2]
        assert gain_28 < gain_12

    def test_single_thread_cannot_exceed_half_capacity(self):
        """One host thread performs its two copies sequentially, so it can
        busy at most one of the two copy cores at a time."""
        experiment = self.make_experiment()
        result = experiment.run(1, buffers_per_thread=4)
        assert result.cpu_utilization <= 0.55

    def test_throughput_reported(self):
        experiment = self.make_experiment()
        result = experiment.run(2, buffers_per_thread=2)
        assert result.buffers_written == 4
        assert result.throughput_bytes_per_sec > 0
