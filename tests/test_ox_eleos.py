"""Integration tests for OX-ELEOS: LSS buffer writes, variable-size page
mapping, segment lifecycle, crash recovery."""

import pytest

from repro.errors import FTLError, OutOfSpaceError
from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, OpenChannelSSD
from repro.ox import EleosConfig, MediaManager, OXEleos
from repro.units import KIB, MIB


def make_stack(groups=2, pus=2, chunks=16, pages=12, config=None):
    geometry = DeviceGeometry(
        num_groups=groups, pus_per_group=pus,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=pages))
    device = OpenChannelSSD(geometry=geometry)
    media = MediaManager(device)
    config = config or EleosConfig(buffer_bytes=1 * MIB, wal_chunk_count=4,
                                   ckpt_chunks_per_slot=2)
    return device, media, OXEleos.format(media, config), config


class TestAppendAndRead:
    def test_variable_sized_pages_roundtrip(self):
        """Pages of arbitrary byte sizes — the core OX-ELEOS feature."""
        __, __m, ftl, __c = make_stack()
        pages = [(1, b"a" * 17), (2, b"b" * 5000), (3, b"c" * 4096),
                 (4, b"d"), (5, b"e" * 40000)]
        ftl.append_buffer(pages)
        for page_id, payload in pages:
            assert ftl.read_page(page_id) == payload

    def test_sub_sector_mapping_granularity(self):
        """Multiple small pages share one 4 KB sector: mapping granularity
        is smaller than the unit of read (§4.2)."""
        __, __m, ftl, __c = make_stack()
        pages = [(i, bytes([i]) * 100) for i in range(1, 11)]
        ftl.append_buffer(pages)
        entries = [ftl.vmap[i] for i in range(1, 11)]
        sectors = {e.first_sector for e in entries}
        assert len(sectors) < len(entries)   # several pages per sector
        assert any(e.offset > 0 for e in entries)
        for page_id, payload in pages:
            assert ftl.read_page(page_id) == payload

    def test_rewrite_page_returns_latest(self):
        __, __m, ftl, __c = make_stack()
        ftl.append_buffer([(7, b"old" * 10)])
        ftl.append_buffer([(7, b"new" * 20)])
        assert ftl.read_page(7) == b"new" * 20

    def test_unmapped_page_rejected(self):
        __, __m, ftl, __c = make_stack()
        with pytest.raises(FTLError):
            ftl.read_page(404)

    def test_empty_buffer_rejected(self):
        __, __m, ftl, __c = make_stack()
        with pytest.raises(FTLError):
            ftl.append_buffer([])

    def test_oversized_buffer_rejected(self):
        __, __m, ftl, __c = make_stack()
        with pytest.raises(FTLError):
            ftl.append_buffer([(1, b"x" * (2 * MIB))])

    def test_buffer_write_is_batched(self):
        """One LSS buffer triggers a bounded number of vector writes (one
        per chunk), not one per page."""
        device, __m, ftl, __c = make_stack()
        before = device.controller.stats.sectors_written
        pages = [(i, b"p" * 4096) for i in range(32)]   # 128 KB
        ftl.append_buffer(pages)
        written = device.controller.stats.sectors_written - before
        # Data sectors + WAL sectors; well below one unit per page.
        assert written < 32 * device.geometry.ws_min


class TestSegments:
    def test_segment_chunks_striped_across_pus(self):
        device, __m, ftl, __c = make_stack()
        almost_chunk = device.geometry.chunk_size - 4096
        seg = ftl.append_buffer([(1, b"x" * almost_chunk),
                                 (2, b"y" * almost_chunk)])
        chunks = ftl.segments[seg]
        assert len(chunks) >= 2
        assert len({(c[0], c[1]) for c in chunks}) == len(chunks)

    def test_free_segment_requires_no_live_pages(self):
        __, __m, ftl, __c = make_stack()
        seg = ftl.append_buffer([(1, b"live" * 100)])
        with pytest.raises(FTLError):
            ftl.free_segment(seg)

    def test_free_segment_reclaims_chunks(self):
        __, __m, ftl, __c = make_stack()
        seg1 = ftl.append_buffer([(1, b"v1" * 100)])
        free_before = len(ftl._free_chunks)
        ftl.append_buffer([(1, b"v2" * 100)])   # page 1 moves to seg2
        ftl.free_segment(seg1)
        assert seg1 not in ftl.segments
        assert len(ftl._free_chunks) > free_before - len(ftl.segments[2])
        assert ftl.read_page(1) == b"v2" * 100

    def test_unknown_segment_rejected(self):
        __, __m, ftl, __c = make_stack()
        with pytest.raises(FTLError):
            ftl.free_segment(99)

    def test_out_of_space_when_segments_pile_up(self):
        device, __m, ftl, __c = make_stack(chunks=8)
        chunk_bytes = device.geometry.chunk_size
        with pytest.raises(OutOfSpaceError):
            for i in range(100):
                ftl.append_buffer([(1000 + i, b"z" * (chunk_bytes - 64))])


class TestCrashRecovery:
    def test_committed_buffer_survives_crash_after_flush(self):
        device, media, ftl, config = make_stack()
        pages = [(i, bytes([i]) * (100 * i + 1)) for i in range(1, 6)]
        ftl.append_buffer(pages)
        media.flush()
        ftl.crash()
        recovered, report = OXEleos.recover(media, config)
        for page_id, payload in pages:
            assert recovered.read_page(page_id) == payload
        assert report.txns_applied == 1

    def test_unflushed_buffer_dropped_atomically(self):
        device, media, ftl, config = make_stack()
        ftl.append_buffer([(1, b"first" * 50)])
        media.flush()
        ftl.append_buffer([(1, b"second" * 50), (2, b"other" * 30)])
        ftl.crash()
        recovered, report = OXEleos.recover(media, config)
        value = recovered.read_page(1)
        if report.txns_dropped:
            # The whole second buffer vanished: page 2 unmapped too.
            assert value == b"first" * 50
            assert 2 not in recovered.vmap
        else:
            assert value == b"second" * 50
            assert recovered.read_page(2) == b"other" * 30

    def test_freed_segment_stays_freed_after_crash(self):
        device, media, ftl, config = make_stack()
        seg1 = ftl.append_buffer([(1, b"v1" * 100)])
        ftl.append_buffer([(1, b"v2" * 100)])
        ftl.free_segment(seg1)
        ftl.checkpoint()
        ftl.crash()
        recovered, __ = OXEleos.recover(media, config)
        assert seg1 not in recovered.segments
        assert recovered.read_page(1) == b"v2" * 100

    def test_checkpoint_bounds_replay(self):
        device, media, ftl, config = make_stack()
        ftl.append_buffer([(1, b"a" * 100)])
        ftl.checkpoint()
        ftl.append_buffer([(2, b"b" * 100)])
        media.flush()
        ftl.crash()
        recovered, report = OXEleos.recover(media, config)
        assert report.txns_applied == 1   # only the post-checkpoint buffer
        assert recovered.read_page(1) == b"a" * 100
        assert recovered.read_page(2) == b"b" * 100

    def test_operations_after_crash_rejected(self):
        __, __m, ftl, __c = make_stack()
        ftl.crash()
        with pytest.raises(FTLError):
            ftl.append_buffer([(1, b"x")])
