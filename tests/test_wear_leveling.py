"""Wear distribution under sustained overwrite + GC churn.

The provisioner recycles chunks through per-PU FIFO free lists, which
gives natural rotation: under a steady overwrite workload no chunk should
accumulate disproportionate erase cycles relative to its peers on the
same parallel unit.
"""

import statistics

from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, OpenChannelSSD, Ppa
from repro.ox import BlockConfig, MediaManager, OXBlock

SS = 4096


def test_gc_spreads_erases_across_chunks():
    geometry = DeviceGeometry(
        num_groups=2, pus_per_group=2,
        flash=FlashGeometry(blocks_per_plane=10, pages_per_block=6))
    device = OpenChannelSSD(geometry=geometry)
    media = MediaManager(device)
    config = BlockConfig(wal_chunk_count=2, ckpt_chunks_per_slot=1,
                         gc_low_watermark=8, gc_high_watermark=12,
                         wal_pressure_threshold=0.9)
    ftl = OXBlock.format(media, config)
    ws = geometry.ws_min

    # Overwrite a small working set many times: every round invalidates
    # the previous one, so GC recycles constantly.
    for round_ in range(120):
        for slot in range(4):
            ftl.write(slot * ws, bytes([1 + round_ % 250]) * SS * ws)
    device.sim.run()
    assert ftl.gc.stats.chunks_recycled > 20

    # Erase counts of the *data* chunks on each PU should be spread, not
    # concentrated: max no more than the mean plus a small band.
    metadata = ftl.layout.metadata_chunk_keys()
    for pu_key, chip in device.chips.items():
        counts = [block.erase_count
                  for index, block in enumerate(chip.blocks)
                  if (pu_key[0], pu_key[1], index) not in metadata]
        if sum(counts) == 0:
            continue
        mean = statistics.mean(counts)
        assert max(counts) <= mean + max(4, 2 * mean), (
            f"hot chunk on {pu_key}: {counts}")

    # Data remains correct throughout.
    for slot in range(4):
        assert ftl.read(slot * ws, 1) == bytes([1 + 119 % 250]) * SS


def test_wear_index_visible_through_chunk_info():
    geometry = DeviceGeometry(
        num_groups=1, pus_per_group=1,
        flash=FlashGeometry(blocks_per_plane=4, pages_per_block=6))
    device = OpenChannelSSD(geometry=geometry)
    ws = geometry.ws_min
    target = Ppa(0, 0, 2, 0)
    for cycle in range(3):
        device.write([target.with_sector(i) for i in range(ws)],
                     [b"w"] * ws)
        device.flush()
        device.reset(target)
    assert device.chunk_info(target).wear_index == 3
