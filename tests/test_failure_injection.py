"""Failure injection: grown bad blocks, program failures, wear-out.

Bad-media management is the device's job (§2.2), but the FTL must react
to the asynchronous error reports: retire chunks, drop lost mappings,
and keep serving everything else.
"""

import pytest

from repro.errors import MediaError
from repro.nand import CellType, FlashGeometry, WearModel
from repro.ocssd import (
    ChunkState,
    CommandStatus,
    DeviceGeometry,
    OpenChannelSSD,
    Ppa,
)
from repro.ox import BlockConfig, MediaManager, OXBlock
from repro.ox.ftl.metadata import FtlChunkState

SS = 4096


def geometry(groups=2, pus=2, chunks=12, pages=6):
    return DeviceGeometry(
        num_groups=groups, pus_per_group=pus,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=pages))


class TestDeviceFailures:
    def test_every_erase_fails_with_prob_one(self):
        device = OpenChannelSSD(geometry=geometry(), grown_fail_prob=1.0)
        completion = device.reset(Ppa(0, 0, 0, 0))
        assert completion.status is CommandStatus.RESET_FAILED
        assert device.chunk_info(Ppa(0, 0, 0, 0)).state is ChunkState.OFFLINE
        notes = device.pop_notifications()
        assert notes and notes[0].kind == "reset-failed"

    def test_worn_out_chunk_fails_erase(self):
        device = OpenChannelSSD(geometry=geometry())
        chip = device.chips[(0, 0)]
        chip.blocks[0].erase_count = chip.wear.endurance
        completion = device.reset(Ppa(0, 0, 0, 0))
        assert completion.status is CommandStatus.RESET_FAILED

    def test_async_program_failure_notification(self):
        """Write-back: the command succeeds, the failure arrives later."""
        from repro.nand.chip import BlockState
        device = OpenChannelSSD(geometry=geometry())
        chip = device.chips[(0, 0)]
        ws = device.report_geometry().ws_min
        ppas = [Ppa(0, 0, 1, s) for s in range(ws)]
        # The chip-level block is broken, but the chunk looks writable:
        # admission succeeds, the background program fails.
        chip.blocks[1].state = BlockState.BAD
        completion = device.write(ppas, [b"x" * 16] * ws)
        assert completion.ok
        device.sim.run()
        notes = device.pop_notifications()
        assert any(note.kind == "write-failed" for note in notes)
        assert device.chunk_info(ppas[0]).state is ChunkState.OFFLINE

    def test_wear_follows_resets(self):
        device = OpenChannelSSD(geometry=geometry())
        ws = device.report_geometry().ws_min
        target = Ppa(1, 1, 3, 0)
        for cycle in range(1, 4):
            device.write([target.with_sector(s) for s in range(ws)],
                         [b"w" * 8] * ws)
            device.flush()
            assert device.reset(target).ok
            assert device.chunk_info(target).wear_index == cycle


class TestFtlBadBlockHandling:
    def make_ftl(self, grown_fail_prob=0.0):
        device = OpenChannelSSD(geometry=geometry(chunks=16),
                                grown_fail_prob=grown_fail_prob,
                                wear_seed=99)
        # Keep the metadata region (group 0, where WAL and checkpoint
        # slots live) reliable, as a real deployment would by placing
        # metadata on an SLC-mode region: failures hit data chunks only.
        for pu in range(2):
            device.chips[(0, pu)].wear = WearModel(
                cell=CellType.TLC, grown_fail_prob=0.0)
        media = MediaManager(device)
        config = BlockConfig(wal_chunk_count=2, ckpt_chunks_per_slot=1,
                             gc_enabled=False)
        return device, media, OXBlock.format(media, config)

    def test_retired_chunk_leaves_provisioner(self):
        device, media, ftl = self.make_ftl()
        ws = device.report_geometry().ws_min
        ftl.write(0, b"a" * SS * ws)     # full unit -> lands on a chunk
        linear = ftl.page_map.lookup(0)
        key = ftl.geometry.delinearize(linear).chunk_key()
        # Simulate an async failure report for that chunk.
        device._notify(Ppa(*key, 0), "write-failed", "injected")
        ftl.write(1000, b"b" * SS * ws)  # absorbs notifications
        info = ftl.chunk_table.get(key)
        assert info.state is FtlChunkState.BAD
        assert ftl.stats.chunks_retired == 1
        assert ftl.stats.sectors_lost >= 1
        # Lost sectors read as zeroes, not I/O errors.
        assert ftl.read(0, 1) == b"\x00" * SS
        # Unaffected data is still there.
        assert ftl.read(1000, 1) == b"b" * SS

    def test_survives_sustained_grown_failures(self):
        """With a small grown-failure probability the FTL keeps running:
        failed chunks retire, the rest of the workload completes."""
        device, media, ftl = self.make_ftl(grown_fail_prob=0.05)
        ws = device.report_geometry().ws_min
        for round_ in range(6):
            for lba in range(0, 4 * ws, ws):
                ftl.write(lba, bytes([round_ + 1]) * SS * ws)
            ftl.flush()
        device.sim.run()
        ftl.write(0, bytes([99]) * SS * ws)
        assert ftl.read(0, 1) == bytes([99]) * SS
