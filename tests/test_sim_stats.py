"""Tests for the measurement primitives."""

import pytest

from repro.sim import Simulator
from repro.sim.stats import (
    LatencyRecorder,
    ThroughputRecorder,
    UtilizationTracker,
)


class TestThroughputRecorder:
    def test_series_buckets_by_window(self):
        recorder = ThroughputRecorder(window=1.0)
        recorder.record(0.1)
        recorder.record(0.9)
        recorder.record(2.5)
        series = recorder.series()
        assert series == [(0.0, 2.0), (1.0, 0.0), (2.0, 1.0)]

    def test_window_scaling(self):
        recorder = ThroughputRecorder(window=0.5)
        recorder.record(0.1, count=10)
        assert recorder.series() == [(0.0, 20.0)]

    def test_average(self):
        recorder = ThroughputRecorder()
        for t in range(10):
            recorder.record(float(t))
        assert recorder.average(elapsed=5.0) == pytest.approx(2.0)

    def test_empty_series(self):
        assert ThroughputRecorder().series() == []

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            ThroughputRecorder(window=0)


class TestLatencyRecorder:
    def test_mean_and_max(self):
        recorder = LatencyRecorder()
        recorder.extend([1.0, 2.0, 3.0])
        assert recorder.mean() == pytest.approx(2.0)
        assert recorder.maximum() == 3.0
        assert recorder.count == 3

    def test_percentiles(self):
        recorder = LatencyRecorder()
        recorder.extend(float(i) for i in range(1, 101))
        assert recorder.percentile(50) == 50.0
        assert recorder.percentile(99) == 99.0
        assert recorder.percentile(100) == 100.0

    def test_empty_recorder_reports_zero(self):
        recorder = LatencyRecorder()
        assert recorder.mean() == 0.0
        assert recorder.percentile(99) == 0.0
        assert recorder.maximum() == 0.0

    def test_percentile_range_checked(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        with pytest.raises(ValueError):
            recorder.percentile(101)


class TestUtilizationTracker:
    def test_utilization_fraction(self):
        sim = Simulator()
        tracker = UtilizationTracker(sim, capacity=2)
        tracker.add_busy(3.0)

        def advance(sim):
            yield sim.timeout(10.0)

        sim.run_until(sim.spawn(advance(sim)))
        # 3 busy-seconds over 2 cores * 10 s = 15 %.
        assert tracker.utilization() == pytest.approx(0.15)

    def test_utilization_saturates_at_one(self):
        sim = Simulator()
        tracker = UtilizationTracker(sim, capacity=1)
        tracker.add_busy(100.0)

        def advance(sim):
            yield sim.timeout(1.0)

        sim.run_until(sim.spawn(advance(sim)))
        assert tracker.utilization() == 1.0

    def test_negative_busy_rejected(self):
        sim = Simulator()
        tracker = UtilizationTracker(sim)
        with pytest.raises(ValueError):
            tracker.add_busy(-1.0)
