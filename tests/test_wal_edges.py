"""WAL edge cases the crash checker flushed out: ring exhaustion must be
retryable, the reader must stop at every flavour of torn tail, and
truncation must not burn erase cycles on chunks it never wrote."""

import pytest

from repro.errors import FTLError
from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, OpenChannelSSD, Ppa
from repro.ox.ftl import serial
from repro.ox.ftl.provisioning import MetadataLayout
from repro.ox.ftl.serial import NO_PPA
from repro.ox.ftl.wal import WalAppender, WalReader, committed_transactions
from repro.ox.media import MediaManager


def make_media(chunks=16, pages=6):
    geometry = DeviceGeometry(
        num_groups=2, pus_per_group=2,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=pages))
    device = OpenChannelSSD(geometry=geometry)
    return device, MediaManager(device)


def run(media, gen):
    return media.sim.run_until(media.sim.spawn(gen))


def layout_for(media, wal_chunk_count=4):
    return MetadataLayout.build(media.geometry,
                                wal_chunk_count=wal_chunk_count,
                                ckpt_chunks_per_slot=1)


def padded_frames(media, records, total=None):
    """Encode *records* into sector frames, noop-padded to *total*
    (default: one write unit)."""
    writer = serial.FrameWriter(media.geometry.sector_size)
    for record in records:
        writer.append(record)
    frames = writer.frames()
    total = total if total is not None else media.geometry.ws_min
    noop = serial.FrameWriter(media.geometry.sector_size)
    noop.append(serial.encode_record(serial.REC_NOOP, b""))
    frames.extend([noop.frames()[0]] * (total - len(frames)))
    return frames


def write_unit(media, key, start_sector, frames, oob):
    ppas = [Ppa(*key, start_sector + i) for i in range(len(frames))]
    run(media, media.write_proc(ppas, frames, oob=oob, fua=True))


class TestRingExhaustion:
    def fill_to_capacity(self, media, appender):
        """Flush units until exactly one write unit of ring remains."""
        ws_min = media.geometry.ws_min
        while appender.capacity_sectors - appender.used_sectors > ws_min:
            appender.append_commit(0)
            run(media, appender.flush_proc())

    def test_failed_flush_leaves_records_buffered(self):
        device, media = make_media(chunks=6)
        layout = layout_for(media, wal_chunk_count=1)
        appender = WalAppender(media, layout.wal_chunks, epoch=0)
        self.fill_to_capacity(media, appender)
        # More than one unit's worth of frames: the pre-flight check
        # must fail before anything is written.
        txn = 1
        while appender._writer.frame_count() <= media.geometry.ws_min:
            appender.append_map_update(
                txn, [(i, i + 1, NO_PPA) for i in range(200)])
            txn += 1
        used_before = appender.used_sectors
        buffered_before = appender._writer.frame_count()
        with pytest.raises(FTLError, match="ring exhausted"):
            run(media, appender.flush_proc())
        assert appender.used_sectors == used_before
        assert appender._writer.frame_count() == buffered_before

    def test_buffered_records_survive_truncate_and_retry(self):
        device, media = make_media(chunks=6)
        layout = layout_for(media, wal_chunk_count=1)
        appender = WalAppender(media, layout.wal_chunks, epoch=0)
        self.fill_to_capacity(media, appender)
        appender.append_map_update(77, [(5, 500, NO_PPA)])
        txn = 100
        while appender._writer.frame_count() <= media.geometry.ws_min:
            appender.append_map_update(
                txn, [(i, i + 1, NO_PPA) for i in range(200)])
            txn += 1
        appender.append_commit(77)
        with pytest.raises(FTLError, match="ring exhausted"):
            run(media, appender.flush_proc())
        # The caller checkpoints (out of scope here) and truncates; the
        # buffered batch then flushes unchanged into the fresh epoch.
        run(media, appender.truncate_proc(new_epoch=1))
        run(media, appender.flush_proc())
        assert appender._writer.frame_count() == 0
        reader = WalReader(media, layout.wal_chunks, epoch=1)
        records = run(media, reader.read_proc())
        txns = dict(committed_transactions(iter(records)))
        assert txns[77] == [(5, 500, NO_PPA)]


class TestTornTail:
    """The reader must stop at the first sector that does not continue
    the epoch/seq chain — each test hand-writes a valid unit followed by
    a differently-broken one."""

    @staticmethod
    def txn_frames(media, txn_id):
        """One write unit holding a complete committed transaction."""
        update = serial.split_map_update(
            txn_id, [(txn_id, txn_id * 10, NO_PPA)],
            media.geometry.sector_size)
        return padded_frames(
            media, list(update) + [serial.encode_commit(txn_id)])

    def setup_ring(self):
        device, media = make_media()
        layout = layout_for(media)
        key = layout.wal_chunks[0]
        ws_min = media.geometry.ws_min
        write_unit(media, key, 0, self.txn_frames(media, 1),
                   oob=[("wal", 0, i) for i in range(ws_min)])
        return device, media, layout, key, ws_min

    def read_txn_ids(self, media, layout):
        reader = WalReader(media, layout.wal_chunks, epoch=0)
        records = run(media, reader.read_proc())
        return [txn for txn, __ in committed_transactions(iter(records))]

    def test_reader_stops_at_wrong_epoch(self):
        device, media, layout, key, ws_min = self.setup_ring()
        write_unit(media, key, ws_min, self.txn_frames(media, 2),
                   oob=[("wal", 1, ws_min + i) for i in range(ws_min)])
        assert self.read_txn_ids(media, layout) == [1]

    def test_reader_stops_at_sequence_gap(self):
        device, media, layout, key, ws_min = self.setup_ring()
        write_unit(media, key, ws_min, self.txn_frames(media, 2),
                   oob=[("wal", 0, ws_min + 5 + i) for i in range(ws_min)])
        assert self.read_txn_ids(media, layout) == [1]

    def test_reader_stops_at_undecodable_frame(self):
        device, media, layout, key, ws_min = self.setup_ring()
        garbage = [b"\xa5" * media.geometry.sector_size] * ws_min
        write_unit(media, key, ws_min, garbage,
                   oob=[("wal", 0, ws_min + i) for i in range(ws_min)])
        assert self.read_txn_ids(media, layout) == [1]

    def test_break_in_one_chunk_hides_later_chunks(self):
        """A torn tail in ring chunk N must also invalidate chunks > N,
        even if their sectors would individually chain."""
        device, media, layout, key, ws_min = self.setup_ring()
        write_unit(media, key, ws_min, self.txn_frames(media, 2),
                   oob=[("wal", 9, ws_min + i) for i in range(ws_min)])
        write_unit(media, layout.wal_chunks[1], 0, self.txn_frames(media, 3),
                   oob=[("wal", 0, 2 * ws_min + i) for i in range(ws_min)])
        assert self.read_txn_ids(media, layout) == [1]


class TestTruncate:
    def test_truncate_skips_never_written_chunks(self):
        device, media = make_media()
        layout = layout_for(media)
        appender = WalAppender(media, layout.wal_chunks, epoch=0)
        appender.append_commit(1)
        run(media, appender.flush_proc())   # touches ring chunk 0 only
        run(media, appender.truncate_proc(new_epoch=1))
        wear = [device.chunks[key].wear_index for key in layout.wal_chunks]
        assert wear[0] == 1
        assert wear[1:] == [0] * (len(layout.wal_chunks) - 1)

    def test_truncate_is_idempotent_on_wear(self):
        device, media = make_media()
        layout = layout_for(media)
        appender = WalAppender(media, layout.wal_chunks, epoch=0)
        run(media, appender.truncate_proc(new_epoch=1))
        run(media, appender.truncate_proc(new_epoch=2))
        assert all(device.chunks[key].wear_index == 0
                   for key in layout.wal_chunks)
