"""Tests for the alternative storage environments: the generic
block-device env (over OX-Block) and the ZNS port (over OX-ZNS)."""

import pytest

from repro.errors import OutOfSpaceError, ReproError
from repro.lsm import DB, DBConfig, DbBench
from repro.lsm.blockenv import BlockDevEnv
from repro.lsm.znsenv import ZnsEnv
from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, OpenChannelSSD
from repro.ox import BlockConfig, MediaManager, OXBlock
from repro.zns import OXZns, ZnsConfig
from repro.units import KIB


def make_device(chunks=80):
    geometry = DeviceGeometry(
        num_groups=4, pus_per_group=4,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=6))
    return OpenChannelSSD(geometry=geometry)


def make_blockdev_db(chunks=80):
    device = make_device(chunks)
    media = MediaManager(device)
    ftl = OXBlock.format(media, BlockConfig(
        wal_chunk_count=8, gc_low_watermark=8, gc_high_watermark=24))
    env = BlockDevEnv(
        ftl, table_sectors=16 * device.report_geometry().sectors_per_chunk)
    config = DBConfig(block_size=96 * KIB, write_buffer_bytes=512 * 1024)
    return device, env, DB(env, config, device.sim)


def make_zns_db(chunks=80):
    device = make_device(chunks)
    media = MediaManager(device)
    zns = OXZns(media, ZnsConfig(chunks_per_zone=4, max_open_zones=16))
    env = ZnsEnv(zns)
    config = DBConfig(block_size=96 * KIB, write_buffer_bytes=512 * 1024)
    return device, zns, env, DB(env, config, device.sim)


def key(i):
    return f"{i:016d}".encode()


class TestBlockDevEnv:
    def test_roundtrip_through_generic_ftl(self):
        device, env, db = make_blockdev_db()
        for i in range(600):
            db.put(key(i), str(i).encode() * 20)
        db.flush()
        db.wait_idle()
        for i in range(0, 600, 37):
            assert db.get(key(i)) == str(i).encode() * 20

    def test_manifest_required_for_visibility(self):
        device, env, db = make_blockdev_db()
        for i in range(200):
            db.put(key(i), b"v" * 64)
        db.close()
        db2 = DB.open(env, DBConfig(block_size=96 * KIB,
                                    write_buffer_bytes=512 * 1024),
                      device.sim)
        assert db2.get(key(3)) == b"v" * 64
        env.manifest.clear()
        db3 = DB.open(env, DBConfig(block_size=96 * KIB,
                                    write_buffer_bytes=512 * 1024),
                      device.sim)
        assert db3.get(key(3)) is None

    def test_deletion_creates_ftl_garbage(self):
        """Trimmed extents leave invalid pages for the generic FTL's GC —
        the cost LightLSM's chunk-aligned deletion avoids."""
        device, env, db = make_blockdev_db()
        for round_ in range(8):
            for i in range(300):
                db.put(key(i), bytes([round_ + 1]) * 128)
            db.flush()
        db.wait_idle()
        device.sim.run()
        assert env.ftl.stats.trims > 0
        # Overwritten/trimmed space shows up as invalid sectors somewhere.
        invalid = sum(
            info.write_next - info.valid_count
            for __, info in env.ftl.chunk_table.items()
            if info.write_next)
        assert invalid > 0

    def test_extent_reuse(self):
        device, env, db = make_blockdev_db()
        for round_ in range(6):
            for i in range(300):
                db.put(key(i), bytes([round_ + 1]) * 200)
            db.flush()
        db.wait_idle()
        device.sim.run()
        assert env._free_list or env._next_lba < env._capacity_sectors

    def test_misaligned_block_size_rejected(self):
        device, env, __ = make_blockdev_db()
        with pytest.raises(ReproError):
            device.sim.run_until(device.sim.spawn(
                env.create_writer_proc(99, 0, block_size=1000)))


class TestZnsEnv:
    def test_roundtrip_through_zns(self):
        device, zns, env, db = make_zns_db()
        for i in range(600):
            db.put(key(i), str(i).encode() * 20)
        db.flush()
        db.wait_idle()
        for i in range(0, 600, 41):
            assert db.get(key(i)) == str(i).encode() * 20

    def test_tables_map_to_whole_zones(self):
        device, zns, env, db = make_zns_db()
        for i in range(400):
            db.put(key(i), b"z" * 512)
        db.flush()
        db.wait_idle()
        used_zones = {zone_id for table in env._tables.values()
                      for zone_id in table.zones}
        assert used_zones
        assert used_zones.isdisjoint(set(env._free_zones))

    def test_deletion_is_zone_reset(self):
        device, zns, env, db = make_zns_db()
        resets_before = zns.stats.zone_resets
        for round_ in range(8):
            for i in range(300):
                db.put(key(i), bytes([round_ + 1]) * 256)
            db.flush()
        db.wait_idle()
        device.sim.run()
        assert zns.stats.zone_resets > resets_before

    def test_manifest_still_required(self):
        """The ZNS port keeps RocksDB's MANIFEST dependence — unlike
        LightLSM, the abstraction does not make media self-describing."""
        device, zns, env, db = make_zns_db()
        for i in range(200):
            db.put(key(i), b"q" * 64)
        db.close()
        env.manifest.clear()
        db2 = DB.open(env, DBConfig(block_size=96 * KIB,
                                    write_buffer_bytes=512 * 1024),
                      device.sim)
        assert db2.get(key(3)) is None

    def test_zone_exhaustion_surfaces(self):
        device, zns, env, db = make_zns_db(chunks=8)
        with pytest.raises(OutOfSpaceError):
            for i in range(30_000):
                db.put(key(i), b"x" * 1024)
