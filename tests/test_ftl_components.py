"""Unit tests for the modular FTL components: mapping, metadata,
provisioning, write buffer, serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FTLError, OutOfSpaceError, RecoveryError
from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, Ppa
from repro.ox.ftl import serial
from repro.ox.ftl.mapping import PageMap
from repro.ox.ftl.metadata import ChunkTable, FtlChunkState
from repro.ox.ftl.provisioning import MetadataLayout, Provisioner
from repro.ox.ftl.writebuffer import PAD_LBA, WriteBuffer


def tiny_geometry(groups=2, pus=2, chunks=8, pages=6) -> DeviceGeometry:
    return DeviceGeometry(
        num_groups=groups, pus_per_group=pus,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=pages))


class TestPageMap:
    def test_update_lookup_remove(self):
        page_map = PageMap()
        assert page_map.lookup(5) is None
        assert page_map.update(5, 100) is None
        assert page_map.lookup(5) == 100
        assert page_map.update(5, 200) == 100
        assert page_map.remove(5) == 200
        assert page_map.lookup(5) is None
        assert page_map.remove(5) is None

    def test_dirty_segments(self):
        page_map = PageMap(segment_size=10)
        page_map.update(5, 1)
        page_map.update(15, 2)
        page_map.update(16, 3)
        assert page_map.dirty_segment_count == 2
        page_map.mark_clean()
        assert page_map.dirty_segment_count == 0

    def test_load_replaces_content(self):
        page_map = PageMap()
        page_map.update(1, 10)
        page_map.load(iter([(2, 20), (3, 30)]))
        assert page_map.lookup(1) is None
        assert page_map.lookup(2) == 20
        assert len(page_map) == 2
        assert page_map.dirty_segment_count == 0

    def test_snapshot_sorted(self):
        page_map = PageMap()
        for lba in (5, 1, 3):
            page_map.update(lba, lba * 10)
        assert page_map.snapshot() == [(1, 10), (3, 30), (5, 50)]


class TestChunkTable:
    def make(self):
        geometry = tiny_geometry()
        keys = [(g, p, c) for g in range(2) for p in range(2)
                for c in range(8)]
        return geometry, ChunkTable(geometry, iter(keys))

    def test_valid_accounting(self):
        __, table = self.make()
        table.add_valid((0, 0, 0), 3)
        table.invalidate((0, 0, 0), 2)
        assert table.get((0, 0, 0)).valid_count == 1
        with pytest.raises(FTLError):
            table.invalidate((0, 0, 0), 5)

    def test_valid_capacity_bound(self):
        geometry, table = self.make()
        with pytest.raises(FTLError):
            table.add_valid((0, 0, 0), geometry.sectors_per_chunk + 1)

    def test_unknown_chunk_rejected(self):
        __, table = self.make()
        with pytest.raises(FTLError):
            table.get((9, 9, 9))

    def test_victims_sorted_by_invalidity(self):
        geometry, table = self.make()
        capacity = geometry.sectors_per_chunk
        for chunk, valid in ((0, capacity), (1, 5), (2, 20), (3, 0)):
            info = table.get((0, 0, chunk))
            info.state = FtlChunkState.FULL
            info.valid_count = valid
        victims = table.victims_in_group(0)
        # Fully-valid chunk excluded; order: most invalid first.
        assert [v.key[2] for v in victims] == [3, 1, 2]
        assert table.victims_in_group(1) == []

    def test_snapshot_load_roundtrip(self):
        geometry, table = self.make()
        table.get((1, 1, 3)).state = FtlChunkState.FULL
        table.get((1, 1, 3)).valid_count = 17
        __, fresh = self.make()
        for row in table.snapshot():
            fresh.load_row(*row)
        info = fresh.get((1, 1, 3))
        assert info.state is FtlChunkState.FULL
        assert info.valid_count == 17


class TestMetadataLayout:
    def test_layout_partitions_space(self):
        geometry = tiny_geometry()
        layout = MetadataLayout.build(geometry, wal_chunk_count=3,
                                      ckpt_chunks_per_slot=2)
        reserved = layout.metadata_chunk_keys()
        assert len(layout.wal_chunks) == 3
        assert len(layout.ckpt_slots[0]) == 2
        assert len(layout.ckpt_slots[1]) == 2
        assert len(reserved) == 7
        data = layout.data_chunk_keys()
        assert len(data) == geometry.total_chunks - 7
        assert not reserved.intersection(data)
        assert all(key[0] == 0 for key in reserved)

    def test_layout_too_big_rejected(self):
        geometry = tiny_geometry(groups=1, pus=1, chunks=4)
        with pytest.raises(FTLError):
            MetadataLayout.build(geometry, wal_chunk_count=10,
                                 ckpt_chunks_per_slot=2)


class TestProvisioner:
    def make(self):
        geometry = tiny_geometry()
        layout = MetadataLayout.build(geometry, wal_chunk_count=2,
                                      ckpt_chunks_per_slot=1)
        table = ChunkTable(geometry, iter(layout.data_chunk_keys()))
        return geometry, Provisioner(geometry, table), table

    def test_units_stripe_across_pus(self):
        geometry, provisioner, __ = self.make()
        keys = [provisioner.allocate_unit()[0] for __ in range(4)]
        pus = {(key[0], key[1]) for key in keys}
        assert len(pus) == 4   # four allocations landed on four PUs

    def test_unit_sectors_sequential_within_chunk(self):
        geometry, provisioner, __ = self.make()
        ws = geometry.ws_min
        per_chunk = geometry.sectors_per_chunk // ws
        total_pus = geometry.total_pus
        allocations = [provisioner.allocate_unit()
                       for __ in range(per_chunk * total_pus)]
        by_chunk = {}
        for key, first in allocations:
            by_chunk.setdefault(key, []).append(first)
        for firsts in by_chunk.values():
            assert firsts == sorted(firsts)
            assert firsts == list(range(0, geometry.sectors_per_chunk, ws))

    def test_group_confined_allocation(self):
        __, provisioner, __t = self.make()
        for _i in range(6):
            key, __ = provisioner.allocate_unit("gc", group=1)
            assert key[0] == 1

    def test_sector_allocation_fills_units(self):
        geometry, provisioner, __ = self.make()
        ws = geometry.ws_min
        first_unit = [provisioner.allocate_sector() for __ in range(ws)]
        assert len({p.chunk_key() for p in first_unit}) == 1
        assert [p.sector for p in first_unit] == list(range(ws))
        next_sector = provisioner.allocate_sector()
        assert next_sector.chunk_key() != first_unit[0].chunk_key()

    def test_current_unit_remaining(self):
        geometry, provisioner, __ = self.make()
        assert provisioner.current_unit_remaining() == 0
        provisioner.allocate_sector()
        assert provisioner.current_unit_remaining() == geometry.ws_min - 1

    def test_out_of_space(self):
        geometry, provisioner, __ = self.make()
        total_units = (geometry.total_chunks - 4) \
            * (geometry.sectors_per_chunk // geometry.ws_min)
        for __i in range(total_units):
            provisioner.allocate_unit()
        with pytest.raises(OutOfSpaceError):
            provisioner.allocate_unit()

    def test_release_and_reuse(self):
        geometry, provisioner, table = self.make()
        key, __ = provisioner.allocate_unit()
        info = table.get(key)
        # Fill the chunk completely.
        while info.state is not FtlChunkState.FULL:
            provisioner.allocate_unit()
            info = table.get(key)
        free_before = provisioner.free_chunks()
        provisioner.release_chunk(key)
        assert provisioner.free_chunks() == free_before + 1
        assert table.get(key).state is FtlChunkState.FREE

    def test_release_with_valid_data_rejected(self):
        __, provisioner, table = self.make()
        key, __u = provisioner.allocate_unit()
        table.add_valid(key, 1)
        with pytest.raises(FTLError):
            provisioner.release_chunk(key)

    def test_adopt_open_chunk(self):
        geometry, provisioner, table = self.make()
        key = (1, 1, 5)
        assert provisioner.adopt_open_chunk(key, geometry.ws_min)
        assert table.get(key).state is FtlChunkState.OPEN
        # Second adoption on the same PU is refused.
        assert not provisioner.adopt_open_chunk((1, 1, 6), geometry.ws_min)


class TestWriteBuffer:
    def make(self, ws=4):
        return WriteBuffer(ws_min=ws, sector_size=64)

    def test_unit_completes_at_ws_min(self):
        buffer = self.make()
        for i in range(3):
            assert buffer.stage(i, Ppa(0, 0, 0, i), b"x") is None
        unit = buffer.stage(3, Ppa(0, 0, 0, 3), b"x")
        assert unit is not None
        assert unit.lbas == [0, 1, 2, 3]
        assert len(buffer) == 0

    def test_lookup_until_written(self):
        buffer = self.make()
        buffer.stage(10, Ppa(0, 0, 0, 0), b"data")
        assert buffer.lookup(10) == b"data"
        for i in range(1, 4):
            unit = buffer.stage(10 + i, Ppa(0, 0, 0, i), b"d")
        assert buffer.lookup(10) == b"data"   # still visible pre-write
        buffer.mark_written(unit)
        assert buffer.lookup(10) is None

    def test_rewrite_keeps_latest_visible(self):
        buffer = self.make()
        unit = None
        buffer.stage(10, Ppa(0, 0, 0, 0), b"old")
        for i in range(1, 4):
            unit = buffer.stage(99 + i, Ppa(0, 0, 0, i), b"z")
        first_unit = unit
        buffer.stage(10, Ppa(0, 0, 1, 0), b"new")
        buffer.mark_written(first_unit)
        assert buffer.lookup(10) == b"new"

    def test_out_of_order_staging_rejected(self):
        buffer = self.make()
        buffer.stage(1, Ppa(0, 0, 0, 0), b"x")
        with pytest.raises(FTLError):
            buffer.stage(2, Ppa(0, 0, 0, 2), b"x")

    def test_oversized_payload_rejected(self):
        buffer = self.make()
        with pytest.raises(FTLError):
            buffer.stage(1, Ppa(0, 0, 0, 0), b"x" * 65)

    def test_pad_lba_not_readable(self):
        buffer = self.make()
        buffer.stage(PAD_LBA, Ppa(0, 0, 0, 0), b"")
        assert buffer.lookup(PAD_LBA) is None


class TestSerial:
    def test_map_update_roundtrip(self):
        entries = [(1, 100, serial.NO_PPA), (2, 200, 150)]
        record = serial.encode_map_update(7, entries)
        decoded = next(iter(serial.decode_frame(self._frame([record]))))
        assert decoded.rtype == serial.REC_MAP_UPDATE
        assert serial.decode_map_update(decoded.body) == (7, entries)

    def test_commit_roundtrip(self):
        record = serial.encode_commit(42)
        decoded = next(iter(serial.decode_frame(self._frame([record]))))
        assert serial.decode_commit(decoded.body) == 42

    def test_ckpt_footer_checksum(self):
        record = serial.encode_ckpt_footer(5)
        decoded = next(iter(serial.decode_frame(self._frame([record]))))
        assert serial.decode_ckpt_footer(decoded.body) == 5

    def test_ckpt_footer_corruption_detected(self):
        record = bytearray(serial.encode_ckpt_footer(5))
        record[-1] ^= 0xFF
        decoded = next(iter(serial.decode_frame(self._frame([bytes(record)]))))
        with pytest.raises(RecoveryError):
            serial.decode_ckpt_footer(decoded.body)

    def test_split_map_update_respects_frame_capacity(self):
        entries = [(i, i * 2, i * 3) for i in range(1000)]
        records = serial.split_map_update(9, entries, sector_size=512)
        writer = serial.FrameWriter(512)
        for record in records:
            writer.append(record)   # must not raise
        recovered = []
        for frame in writer.frames():
            for record in serial.decode_frame(frame):
                txn, part = serial.decode_map_update(record.body)
                assert txn == 9
                recovered.extend(part)
        assert recovered == entries

    def test_vpage_roundtrip(self):
        entries = [(10, 999, 123, 4567), (11, 0, 0, 1)]
        records = serial.split_vpage_update(3, entries, sector_size=4096)
        txn, decoded = serial.decode_vpage_update(
            next(iter(serial.decode_frame(self._frame(records)))).body)
        assert txn == 3
        assert decoded == entries

    def test_segment_roundtrip(self):
        record = serial.encode_segment_new(5, [1, 2, 3])
        decoded = next(iter(serial.decode_frame(self._frame([record]))))
        assert serial.decode_segment(decoded.body) == (5, [1, 2, 3])

    def test_empty_frame_yields_nothing(self):
        assert list(serial.decode_frame(None)) == []
        assert list(serial.decode_frame(b"")) == []
        assert list(serial.decode_frame(b"\x00" * 4096)) == []

    def test_corrupt_frame_detected(self):
        import struct
        bogus = struct.pack("<I", 5000) + b"x" * 100
        with pytest.raises(RecoveryError):
            list(serial.decode_frame(bogus))

    @staticmethod
    def _frame(records, sector_size=4096):
        writer = serial.FrameWriter(sector_size)
        for record in records:
            writer.append(record)
        frames = writer.frames()
        assert len(frames) == 1
        return frames[0]


@given(st.lists(st.tuples(st.integers(0, 2**63), st.integers(0, 2**63),
                          st.integers(0, 2**64 - 1)), max_size=300))
def test_map_update_encoding_roundtrip_property(entries):
    records = serial.split_map_update(1, entries, sector_size=4096)
    writer = serial.FrameWriter(4096)
    for record in records:
        writer.append(record)
    recovered = []
    for frame in writer.frames():
        for record in serial.decode_frame(frame):
            __, part = serial.decode_map_update(record.body)
            recovered.extend(part)
    assert recovered == list(entries)
