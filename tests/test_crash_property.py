"""Property-based crash testing for OX-Block.

For any random sequence of transactional writes and flush barriers,
followed by a crash and recovery:

* every sector must read back as *some* acknowledged version of itself —
  never garbage, never a torn mix within one sector;
* any version made durable by a flush barrier establishes a floor: the
  recovered value must be that version or a newer one (durability);
* the recovered FTL must remain fully functional.

This is the "bring the Open-Channel SSD back to a consistent state"
guarantee of §4.3, checked against arbitrary interleavings.
"""

from hypothesis import given, settings, strategies as st

from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, OpenChannelSSD
from repro.ox import BlockConfig, MediaManager, OXBlock

SS = 4096
LBA_SPACE = 48


def make_stack():
    geometry = DeviceGeometry(
        num_groups=2, pus_per_group=2,
        flash=FlashGeometry(blocks_per_plane=24, pages_per_block=6))
    device = OpenChannelSSD(geometry=geometry)
    media = MediaManager(device)
    config = BlockConfig(wal_chunk_count=6, ckpt_chunks_per_slot=2,
                         gc_enabled=False, wal_pressure_threshold=0.9)
    return device, media, OXBlock.format(media, config), config


# An operation is either a write (lba, sectors, fill) or a flush barrier.
write_op = st.tuples(st.integers(0, LBA_SPACE - 4), st.integers(1, 4),
                     st.integers(1, 250))
operation = st.one_of(write_op, st.just("flush"))


@settings(max_examples=25, deadline=None)
@given(st.lists(operation, min_size=1, max_size=25))
def test_recovery_reads_only_acknowledged_versions(operations):
    device, media, ftl, config = make_stack()

    # history[lba] = list of fills, oldest first.
    history = {}
    # durable_floor[lba] = index into history[lba] established by a flush.
    durable_floor = {}

    for op in operations:
        if op == "flush":
            ftl.flush()
            for lba, versions in history.items():
                durable_floor[lba] = len(versions) - 1
        else:
            lba, sectors, fill = op
            ftl.write(lba, bytes([fill]) * (SS * sectors))
            for offset in range(sectors):
                history.setdefault(lba + offset, []).append(fill)

    ftl.crash()
    recovered, report = OXBlock.recover(media, config)

    for lba, versions in history.items():
        value = recovered.read(lba, 1)
        # No torn sectors: the whole sector is one fill byte.
        assert len(set(value)) == 1, f"torn sector at lba {lba}"
        observed = value[0]
        floor = durable_floor.get(lba)
        if floor is None:
            allowed = set(versions) | {0}
        else:
            allowed = set(versions[floor:])
        assert observed in allowed, (
            f"lba {lba}: read {observed}, allowed {sorted(allowed)} "
            f"(history {versions}, floor {floor})")

    # The recovered instance still works end to end.
    recovered.write(0, bytes([251]) * SS)
    assert recovered.read(0, 1) == bytes([251]) * SS
    recovered.flush()
    recovered.crash()
    twice, __ = OXBlock.recover(media, config)
    assert twice.read(0, 1) == bytes([251]) * SS
