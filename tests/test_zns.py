"""Tests for the OX-ZNS FTL: zone state machine, append/read/reset, open
zone limits."""

import pytest

from repro.errors import ZoneError
from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, OpenChannelSSD
from repro.ox import MediaManager
from repro.zns import OXZns, Zone, ZoneState, ZnsConfig


def make_zns(groups=2, pus=2, chunks=8, pages=6, **config):
    geometry = DeviceGeometry(
        num_groups=groups, pus_per_group=pus,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=pages))
    device = OpenChannelSSD(geometry=geometry)
    media = MediaManager(device)
    return device, OXZns(media, ZnsConfig(**config) if config else None)


SS = 4096


class TestZoneStateMachine:
    def test_initial_state(self):
        zone = Zone(zone_id=0, capacity=100)
        assert zone.state is ZoneState.EMPTY
        assert zone.write_pointer == 0

    def test_append_transitions(self):
        zone = Zone(zone_id=0, capacity=10)
        zone.check_append(4)
        zone.advance(4)
        assert zone.state is ZoneState.OPEN
        zone.advance(6)
        assert zone.state is ZoneState.FULL
        with pytest.raises(ZoneError):
            zone.check_append(1)

    def test_read_bounds(self):
        zone = Zone(zone_id=0, capacity=10)
        zone.advance(4)
        zone.check_read(0, 4)
        with pytest.raises(ZoneError):
            zone.check_read(2, 4)

    def test_reset(self):
        zone = Zone(zone_id=0, capacity=10)
        zone.advance(10)
        zone.reset()
        assert zone.state is ZoneState.EMPTY
        assert zone.write_pointer == 0

    def test_offline_rejects_everything(self):
        zone = Zone(zone_id=0, capacity=10)
        zone.retire()
        with pytest.raises(ZoneError):
            zone.check_append(1)
        with pytest.raises(ZoneError):
            zone.reset()


class TestZnsDevice:
    def test_zone_carving_covers_device(self):
        device, zns = make_zns()
        total_chunks = sum(len(z.chunks) for z in zns.zones)
        assert total_chunks == device.report_geometry().total_chunks
        assert all(len({(c[0]) for c in z.chunks}) == 1 for z in zns.zones)

    def test_zone_chunks_on_distinct_pus(self):
        __, zns = make_zns(pus=4, chunks=8, chunks_per_zone=4)
        for zone in zns.zones:
            assert len({(c[0], c[1]) for c in zone.chunks}) == 4

    def test_append_read_roundtrip(self):
        __, zns = make_zns()
        data = b"A" * SS * 3
        lba = zns.append(0, data)
        assert lba == 0
        assert zns.read(lba, 3) == data

    def test_appends_are_sequential(self):
        __, zns = make_zns()
        first = zns.append(0, b"1" * SS)
        second = zns.append(0, b"2" * SS)
        assert second > first
        assert zns.read(second, 1) == b"2" * SS

    def test_append_is_padded_transparently(self):
        """The host writes sector-aligned data; ws_min never shows."""
        device, zns = make_zns()
        ws_min = device.report_geometry().ws_min
        lba = zns.append(0, b"x" * SS)      # far below ws_min
        assert zns.read(lba, 1) == b"x" * SS
        zone = zns.zone(0)
        assert zone.write_pointer % ws_min == 0

    def test_read_beyond_pointer_rejected(self):
        __, zns = make_zns()
        zns.append(0, b"x" * SS)
        with pytest.raises(ZoneError):
            zns.read(5 * SS, 1)

    def test_full_zone_rejects_append(self):
        __, zns = make_zns(chunks_per_zone=1)
        zone = zns.zone(0)
        zns.append(0, b"f" * SS * zone.capacity)
        assert zone.state is ZoneState.FULL
        with pytest.raises(ZoneError):
            zns.append(0, b"x" * SS)

    def test_reset_zone_erases_and_reopens(self):
        device, zns = make_zns(chunks_per_zone=1)
        zone = zns.zone(0)
        zns.append(0, b"f" * SS * zone.capacity)
        zns.reset_zone(0)
        assert zone.state is ZoneState.EMPTY
        wear = device.chunk_info(
            __import__("repro.ocssd.address", fromlist=["Ppa"])
            .Ppa(*zone.chunks[0], 0)).wear_index
        assert wear == 1
        assert zns.append(0, b"n" * SS) == zone.start_lba

    def test_finish_zone_closes_early(self):
        __, zns = make_zns()
        zns.append(0, b"x" * SS)
        zns.finish_zone(0)
        assert zns.zone(0).state is ZoneState.FULL
        with pytest.raises(ZoneError):
            zns.append(0, b"y" * SS)

    def test_open_zone_limit(self):
        __, zns = make_zns(chunks_per_zone=1, max_open_zones=2)
        zns.append(0, b"a" * SS)
        zns.append(1, b"b" * SS)
        with pytest.raises(ZoneError):
            zns.append(2, b"c" * SS)
        # Filling one zone frees an open slot.
        zone = zns.zone(0)
        zns.append(0, b"a" * SS * zone.remaining)
        zns.append(2, b"c" * SS)

    def test_large_append_spans_chunks(self):
        device, zns = make_zns(chunks_per_zone=2)
        geometry = device.report_geometry()
        sectors = geometry.sectors_per_chunk + geometry.ws_min
        data = bytes([7]) * (SS * sectors)
        lba = zns.append(0, data)
        assert zns.read(lba, sectors) == data

    def test_misaligned_append_rejected(self):
        __, zns = make_zns()
        with pytest.raises(ZoneError):
            zns.append(0, b"tiny")


class TestFinishZone:
    """Regressions for finish_zone: the proc body used to be unreachable
    (the generator returned before its first yield was ever driven), and
    an EMPTY finish must not touch the open-zone accounting."""

    def test_finish_open_zone_frees_an_open_slot(self):
        __, zns = make_zns(chunks_per_zone=1, max_open_zones=1)
        zns.append(0, b"a" * SS)
        with pytest.raises(ZoneError):
            zns.append(1, b"b" * SS)
        zns.finish_zone(0)
        assert zns.zone(0).state is ZoneState.FULL
        zns.append(1, b"b" * SS)   # the slot is free again

    def test_finish_empty_zone_does_not_free_a_slot(self):
        """Finishing a never-opened zone went EMPTY -> FULL without ever
        holding an open slot; decrementing the open count for it would
        let the limit be exceeded."""
        __, zns = make_zns(chunks_per_zone=1, max_open_zones=1)
        zns.append(0, b"a" * SS)           # occupies the only slot
        zns.finish_zone(1)                  # EMPTY, was never open
        assert zns.zone(1).state is ZoneState.FULL
        with pytest.raises(ZoneError):
            zns.append(2, b"c" * SS)        # zone 0 still holds the slot

    def test_finish_is_effective_and_durable(self):
        __, zns = make_zns()
        zns.append(0, b"x" * SS * 2)
        before = zns.zone(0).write_pointer
        zns.finish_zone(0)
        zone = zns.zone(0)
        assert zone.state is ZoneState.FULL
        assert zone.write_pointer == before   # finish pads nothing visible
        assert zns.read(zone.start_lba, 2) == b"x" * SS * 2
        with pytest.raises(ZoneError):
            zns.append(0, b"y" * SS)
        assert zns.stats.zones_finished == 1

    def test_finish_full_zone_is_a_noop(self):
        __, zns = make_zns(chunks_per_zone=1)
        zone = zns.zone(0)
        zns.append(0, b"f" * SS * zone.capacity)
        assert zone.state is ZoneState.FULL
        zns.finish_zone(0)
        assert zns.stats.zones_finished == 0

    def test_finish_offline_zone_rejected(self):
        __, zns = make_zns(chunks_per_zone=1)
        zns.zone(0).retire()
        with pytest.raises(ZoneError, match="offline"):
            zns.finish_zone(0)
