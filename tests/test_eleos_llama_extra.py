"""Additional coverage for OX-ELEOS internals and the LLAMA engine:
WAL-pressure checkpoints, multi-segment flushes, segment attribution."""

import pytest

from repro.errors import FTLError
from repro.llama import LlamaConfig, LlamaEngine
from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, OpenChannelSSD
from repro.ox import EleosConfig, MediaManager, OXEleos
from repro.units import KIB, MIB


def make_stack(buffer_kib=256, wal_chunks=2, pressure=0.5, chunks=24):
    geometry = DeviceGeometry(
        num_groups=2, pus_per_group=2,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=12))
    device = OpenChannelSSD(geometry=geometry)
    media = MediaManager(device)
    config = EleosConfig(buffer_bytes=buffer_kib * KIB,
                         wal_chunk_count=wal_chunks,
                         ckpt_chunks_per_slot=1,
                         wal_pressure_threshold=pressure)
    return device, media, OXEleos.format(media, config), config


class TestEleosInternals:
    def test_wal_pressure_forces_checkpoint(self):
        device, media, ftl, __ = make_stack(wal_chunks=2, pressure=0.2)
        checkpoints_before = ftl.stats.checkpoints
        for i in range(30):
            ftl.append_buffer([(i, bytes([i]) * 100)])
        assert ftl.stats.checkpoints > checkpoints_before

    def test_segment_of_tracks_latest_location(self):
        device, media, ftl, __ = make_stack()
        seg1 = ftl.append_buffer([(1, b"one" * 10)])
        assert ftl.segment_of(1) == seg1
        seg2 = ftl.append_buffer([(1, b"two" * 10)])
        assert ftl.segment_of(1) == seg2
        assert ftl.segment_of(404) is None

    def test_stats_accumulate(self):
        device, media, ftl, __ = make_stack()
        ftl.append_buffer([(1, b"a" * 100), (2, b"b" * 200)])
        ftl.read_page(1)
        assert ftl.stats.buffers_appended == 1
        assert ftl.stats.pages_appended == 2
        assert ftl.stats.bytes_appended == 300
        assert ftl.stats.pages_read == 1

    def test_page_exactly_chunk_sized(self):
        device, media, ftl, __ = make_stack(buffer_kib=1024)
        chunk_bytes = device.report_geometry().chunk_size
        ftl.append_buffer([(9, b"C" * chunk_bytes)])
        assert len(ftl.read_page(9)) == chunk_bytes

    def test_recovery_after_wal_pressure_checkpoints(self):
        device, media, ftl, config = make_stack(wal_chunks=2, pressure=0.2)
        for i in range(20):
            ftl.append_buffer([(i, bytes([i + 1]) * 300)])
        media.flush()
        ftl.crash()
        recovered, report = OXEleos.recover(media, config)
        assert report.checkpoint_seq >= 1
        for i in range(20):
            assert recovered.read_page(i) == bytes([i + 1]) * 300


class TestLlamaMultiSegmentFlush:
    def test_flush_splits_across_lss_buffers(self):
        """More dirty data than one LSS buffer: the flush emits several
        segments, each within the buffer bound."""
        device, media, ftl, __ = make_stack(buffer_kib=64)
        engine = LlamaEngine(ftl)
        for pid in range(40):
            engine.replace(pid, bytes([pid]) * 4000)   # ~160 KB total
        engine.flush()
        assert ftl.stats.buffers_appended >= 3
        for pid in range(40):
            assert engine.read(pid) == bytes([pid]) * 4000

    def test_oversized_page_rejected_at_flush(self):
        device, media, ftl, __ = make_stack(buffer_kib=16)
        engine = LlamaEngine(ftl)
        engine.replace(1, b"x" * (64 * KIB))
        with pytest.raises(Exception):
            engine.flush()

    def test_cleaning_after_multi_segment_flush(self):
        # Note: a live-ratio threshold of 1.0 would make *every* segment
        # eligible forever — the cleaner would relocate pages in an
        # endless loop and literally wear out the WAL region (a failure
        # mode the simulator reproduces).  0.9 cleans only segments that
        # actually lost pages.
        device, media, ftl, __ = make_stack(buffer_kib=64, chunks=48)
        engine = LlamaEngine(ftl, LlamaConfig(clean_live_ratio=0.9))
        for pid in range(40):
            engine.replace(pid, bytes([pid]) * 4000)
        engine.flush()
        for pid in range(40):
            engine.replace(pid, bytes([pid + 100]) * 4000)
        engine.flush()
        # All early segments are now fully dead; clean them all.
        freed = 0
        while engine.clean_once() is not None:
            freed += 1
        assert freed >= 3
        for pid in range(40):
            assert engine.read(pid) == bytes([pid + 100]) * 4000
