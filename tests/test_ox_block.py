"""Integration tests for the OX-Block FTL: read/write semantics, WAL
durability, checkpointing, recovery, GC."""

import pytest

from repro.errors import FTLError
from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, OpenChannelSSD
from repro.ox import BlockConfig, MediaManager, OXBlock


def make_stack(groups=2, pus=2, chunks=16, pages=12, config=None,
               **device_kwargs):
    geometry = DeviceGeometry(
        num_groups=groups, pus_per_group=pus,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=pages))
    device = OpenChannelSSD(geometry=geometry, **device_kwargs)
    media = MediaManager(device)
    config = config or BlockConfig(wal_chunk_count=4, ckpt_chunks_per_slot=2)
    return device, media, OXBlock.format(media, config), config


SS = 4096


class TestBasicIO:
    def test_write_read_roundtrip(self):
        __, __m, ftl, __c = make_stack()
        ftl.write(0, b"a" * SS + b"b" * SS)
        assert ftl.read(0, 1) == b"a" * SS
        assert ftl.read(1, 1) == b"b" * SS
        assert ftl.read(0, 2) == b"a" * SS + b"b" * SS

    def test_unmapped_reads_zero(self):
        __, __m, ftl, __c = make_stack()
        assert ftl.read(1234, 2) == b"\x00" * (2 * SS)

    def test_overwrite_returns_latest(self):
        __, __m, ftl, __c = make_stack()
        ftl.write(7, b"1" * SS)
        ftl.write(7, b"2" * SS)
        assert ftl.read(7, 1) == b"2" * SS

    def test_large_write_one_transaction(self):
        """The paper's workload: random writes up to 1 MB, each one a
        transaction."""
        __, __m, ftl, __c = make_stack()
        data = bytes(range(256)) * (SS // 256) * 32   # 128 KB
        txn = ftl.write(100, data)
        assert isinstance(txn, int)
        assert ftl.read(100, 32) == data

    def test_misaligned_write_rejected(self):
        __, __m, ftl, __c = make_stack()
        with pytest.raises(FTLError):
            ftl.write(0, b"short")
        with pytest.raises(FTLError):
            ftl.write(0, b"")

    def test_trim_unmaps(self):
        __, __m, ftl, __c = make_stack()
        ftl.write(5, b"x" * SS)
        ftl.trim(5)
        assert ftl.read(5, 1) == b"\x00" * SS

    def test_stats_accumulate(self):
        __, __m, ftl, __c = make_stack()
        ftl.write(0, b"x" * SS)
        ftl.read(0, 1)
        ftl.trim(0)
        assert ftl.stats.writes == 1
        assert ftl.stats.reads == 1
        assert ftl.stats.trims == 1


class TestCrashRecovery:
    def test_flushed_data_survives_crash(self):
        device, media, ftl, config = make_stack()
        ftl.write(0, b"A" * SS)
        ftl.write(50, b"B" * SS * 2)
        ftl.flush()
        ftl.crash()
        recovered, report = OXBlock.recover(media, config)
        assert recovered.read(0, 1) == b"A" * SS
        assert recovered.read(50, 2) == b"B" * SS * 2
        assert report.duration > 0

    def test_operations_after_crash_rejected(self):
        __, __m, ftl, __c = make_stack()
        ftl.crash()
        with pytest.raises(FTLError):
            ftl.write(0, b"x" * SS)
        with pytest.raises(FTLError):
            ftl.read(0)

    def test_unflushed_transaction_dropped_whole(self):
        """Atomicity: a transaction whose data died in the cache must
        disappear entirely, leaving the previous value."""
        device, media, ftl, config = make_stack()
        ftl.write(10, b"old" + b"\x00" * (SS - 3))
        ftl.flush()
        # Overwrite without flushing: data sits in buffer/cache.
        ftl.write(10, b"new" + b"\x00" * (SS - 3))
        ftl.crash()
        recovered, report = OXBlock.recover(media, config)
        value = recovered.read(10, 1)
        assert value[:3] in (b"old", b"new")
        # Whichever version survived, it must be a complete one.
        if value[:3] == b"new":
            assert report.txns_dropped == 0

    def test_multi_sector_atomicity(self):
        """All-or-nothing for a multi-sector transaction after a crash."""
        device, media, ftl, config = make_stack()
        base = b"0" * SS * 4
        ftl.write(0, base)
        ftl.flush()
        ftl.write(0, b"1" * SS * 4)    # not flushed
        ftl.crash()
        recovered, __ = OXBlock.recover(media, config)
        value = recovered.read(0, 4)
        assert value in (b"0" * SS * 4, b"1" * SS * 4)

    def test_recovery_idempotent(self):
        device, media, ftl, config = make_stack()
        for i in range(8):
            ftl.write(i * 10, bytes([i]) * SS)
        ftl.flush()
        ftl.crash()
        first, __ = OXBlock.recover(media, config)
        content = [first.read(i * 10, 1) for i in range(8)]
        first.crash()
        second, __r = OXBlock.recover(media, config)
        assert [second.read(i * 10, 1) for i in range(8)] == content

    def test_recovery_without_any_writes(self):
        device, media, ftl, config = make_stack()
        ftl.crash()
        recovered, report = OXBlock.recover(media, config)
        assert recovered.read(0, 1) == b"\x00" * SS
        assert report.txns_applied == 0

    def test_background_flush_makes_data_durable_eventually(self):
        device, media, ftl, config = make_stack()
        # A full write unit leaves the FTL buffer immediately; the device
        # flusher then persists it without an explicit flush.
        ws = device.geometry.ws_min
        ftl.write(3, b"Z" * SS * ws)
        device.sim.run()          # flusher drains without explicit flush
        ftl.crash()
        recovered, __ = OXBlock.recover(media, config)
        assert recovered.read(3, ws) == b"Z" * SS * ws

    def test_close_then_recover(self):
        device, media, ftl, config = make_stack()
        ftl.write(1, b"C" * SS)
        ftl.close()
        recovered, report = OXBlock.recover(media, config)
        assert recovered.read(1, 1) == b"C" * SS
        # Clean shutdown checkpointed: nothing to replay.
        assert report.records_decoded == 0


class TestCheckpointing:
    def test_checkpoint_bounds_wal_replay(self):
        device, media, ftl, config = make_stack()
        for i in range(6):
            ftl.write(i, bytes([i + 1]) * SS)
        ftl.flush()
        device.sim.run_until(device.sim.spawn(ftl._checkpoint_locked_proc()))
        for i in range(6, 9):
            ftl.write(i, bytes([i + 1]) * SS)
        ftl.flush()
        ftl.crash()
        recovered, report = OXBlock.recover(media, config)
        # Only the three post-checkpoint transactions replay.
        assert report.txns_applied == 3
        for i in range(9):
            assert recovered.read(i, 1) == bytes([i + 1]) * SS

    def test_checkpoint_daemon_runs_on_interval(self):
        config = BlockConfig(wal_chunk_count=4, ckpt_chunks_per_slot=2,
                             checkpoint_interval=0.5)
        device, media, ftl, __ = make_stack(config=config)
        ftl.write(0, b"x" * SS)
        device.sim.run(until=device.sim.now + 2.0)
        assert ftl.stats.checkpoints >= 3   # format + >=2 periodic

    def test_wal_pressure_forces_checkpoint(self):
        config = BlockConfig(wal_chunk_count=2, ckpt_chunks_per_slot=2,
                             wal_pressure_threshold=0.3)
        device, media, ftl, __ = make_stack(config=config)
        for i in range(40):
            ftl.write(i, b"p" * SS)
        assert ftl.stats.forced_checkpoints >= 1


class TestGarbageCollection:
    def test_gc_reclaims_overwritten_space(self):
        config = BlockConfig(wal_chunk_count=2, ckpt_chunks_per_slot=1,
                             gc_low_watermark=6, gc_high_watermark=10)
        device, media, ftl, __ = make_stack(groups=2, pus=2, chunks=8,
                                            pages=6, config=config)
        # Hammer a small LBA range so almost everything written becomes
        # invalid, then keep writing until GC must have run.
        for round_ in range(150):
            for lba in range(8):
                ftl.write(lba, bytes([round_ % 251]) * SS)
        device.sim.run()
        assert ftl.gc.stats.chunks_recycled > 0
        for lba in range(8):
            assert ftl.read(lba, 1) == bytes([149 % 251]) * SS

    def test_gc_preserves_live_data(self):
        config = BlockConfig(wal_chunk_count=2, ckpt_chunks_per_slot=1,
                             gc_low_watermark=6, gc_high_watermark=10)
        device, media, ftl, __ = make_stack(groups=2, pus=2, chunks=8,
                                            pages=6, config=config)
        ftl.write(1000, b"KEEP" + b"\x00" * (SS - 4))
        for round_ in range(150):
            for lba in range(8):
                ftl.write(lba, bytes([(round_ + 1) % 251]) * SS)
        device.sim.run()
        assert ftl.gc.stats.chunks_recycled > 0
        assert ftl.read(1000, 1)[:4] == b"KEEP"

    def test_gc_survives_crash_after_relocation(self):
        config = BlockConfig(wal_chunk_count=2, ckpt_chunks_per_slot=1,
                             gc_low_watermark=6, gc_high_watermark=10)
        device, media, ftl, __ = make_stack(groups=2, pus=2, chunks=8,
                                            pages=6, config=config)
        ftl.write(1000, b"KEEP" + b"\x00" * (SS - 4))
        for round_ in range(150):
            for lba in range(8):
                ftl.write(lba, bytes([(round_ + 1) % 251]) * SS)
        device.sim.run()
        assert ftl.gc.stats.chunks_recycled > 0
        ftl.flush()
        ftl.crash()
        recovered, __r = OXBlock.recover(media, config)
        assert recovered.read(1000, 1)[:4] == b"KEEP"
        for lba in range(8):
            assert recovered.read(lba, 1) == bytes([150 % 251]) * SS
