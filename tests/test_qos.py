"""Tests for repro.qos: tenants, placement, the token bucket, and the
DRR channel scheduler's edge cases (starvation-proofing, the empty-queue
bypass, throttle x fault-injection interaction)."""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.nand import FlashGeometry
from repro.ocssd import (ChunkReset, CommandStatus, DeviceGeometry,
                         OpenChannelSSD, Ppa, VectorRead, VectorWrite)
from repro.qos import (PARTITIONED, SHARED, QosConfig, QosScheduler,
                       SYSTEM_TENANT, TenantContext, TenantRegistry,
                       TokenBucket, plan_placement)
from repro.sim.core import Simulator
from repro.workloads import derive_stream_seed

SECTOR = 4096
KIB = 1024


# -- tenants and placement ---------------------------------------------------


def test_tenant_validation():
    with pytest.raises(ValueError):
        TenantContext(tenant_id=1, name="t", weight=0.0)
    with pytest.raises(ValueError):
        TenantContext(tenant_id=1, name="t", weight=-2.0)


def test_tenant_registry():
    registry = TenantRegistry()
    a = registry.register("alice", weight=3.0)
    b = registry.register("bob", rate_bytes_per_sec=1e6)
    assert (a.tenant_id, b.tenant_id) == (1, 2)
    assert registry.lookup("alice") is a
    assert registry.lookup(SYSTEM_TENANT.name) is SYSTEM_TENANT
    assert "bob" in registry and len(registry) == 2
    with pytest.raises(ValueError):
        registry.register("alice")
    with pytest.raises(ValueError):
        registry.register(SYSTEM_TENANT.name)


def test_placement_partitioned_is_disjoint():
    a = TenantContext(1, "a")
    b = TenantContext(2, "b")
    plan = plan_placement(4, 2, [a, b], policy=PARTITIONED)
    assert len(plan[a]) == len(plan[b]) == 4
    assert not set(plan[a]) & set(plan[b])
    groups_a = {group for group, __ in plan[a]}
    groups_b = {group for group, __ in plan[b]}
    assert not groups_a & groups_b          # whole groups, no sharing
    assert groups_a | groups_b == {0, 1, 2, 3}


def test_placement_shared_and_errors():
    a = TenantContext(1, "a")
    b = TenantContext(2, "b")
    plan = plan_placement(2, 2, [a, b], policy=SHARED)
    assert plan[a] == plan[b]
    assert len(plan[a]) == 4
    with pytest.raises(ValueError):
        plan_placement(1, 2, [a, b], policy=PARTITIONED)
    with pytest.raises(ValueError):
        plan_placement(4, 2, [a, a], policy=PARTITIONED)
    with pytest.raises(ValueError):
        plan_placement(4, 2, [a, b], policy="bogus")


def test_stream_seed_derivation():
    assert derive_stream_seed(7, "") == 7
    assert derive_stream_seed(7, "a") == derive_stream_seed(7, "a")
    assert derive_stream_seed(7, "a") != derive_stream_seed(7, "b")
    assert derive_stream_seed(7, "a") != derive_stream_seed(8, "a")


# -- token bucket (and its lsm alias) ----------------------------------------


def test_lsm_db_throttle_is_the_qos_token_bucket():
    from repro.lsm import db
    assert db.TokenBucket is TokenBucket


def test_token_bucket_unlimited_never_waits():
    sim = Simulator()
    bucket = TokenBucket(sim)
    sim.run_until(sim.spawn(bucket.acquire_proc(10 ** 9)))
    assert sim.now == 0.0
    assert bucket.total_wait == 0.0


def test_token_bucket_paces_past_burst():
    sim = Simulator()
    bucket = TokenBucket(sim, rate_bytes_per_sec=1000, burst_bytes=1000)

    def consumer():
        for __ in range(5):
            yield from bucket.acquire_proc(1000)

    sim.run_until(sim.spawn(consumer()))
    # First 1000 bytes ride the burst credit; the remaining 4000 pace
    # out at 1000 B/s.
    assert sim.now == pytest.approx(4.0)
    assert bucket.total_acquired == 5000


# -- scheduler: synthetic channel harness ------------------------------------


def _worker(sim, sched, tenant, group, cost, service_s, stop_at, served):
    while sim.now < stop_at:
        yield from sched.channel_acquire_proc(tenant, "write", group, cost)
        yield sim.timeout(service_s)
        sched.channel_release(group)
        served[tenant.name] += cost


def test_drr_bandwidth_follows_weights():
    """Backlogged 3:1 tenants converge to a 3:1 byte split."""
    sim = Simulator()
    sched = QosScheduler(sim)
    heavy = TenantContext(1, "heavy", weight=3.0)
    light = TenantContext(2, "light", weight=1.0)
    served = {"heavy": 0, "light": 0}
    # Several closed-loop workers per tenant keep both queues backlogged;
    # a single worker per tenant would self-pace to 1:1.
    for tenant in (heavy, light):
        for __ in range(8):
            sim.spawn(_worker(sim, sched, tenant, 0, 96 * KIB, 1e-4,
                              0.2, served))
    sim.run_until(sim.timeout(0.25))
    ratio = served["heavy"] / served["light"]
    assert 2.4 < ratio < 3.6
    assert sched.grants > 0 and sched.fast_grants >= 1


def test_drr_pathological_weights_no_starvation():
    """A weight-0.001 tenant still gets served (fast-forward + aging),
    and the scheduler does it in O(1) work per grant, not thousands of
    empty rotations."""
    sim = Simulator()
    sched = QosScheduler(sim, QosConfig(starvation_rounds=16))
    big = TenantContext(1, "big", weight=1000.0)
    tiny = TenantContext(2, "tiny", weight=0.001)
    served = {"big": 0, "tiny": 0}
    for tenant in (big, tiny):
        for __ in range(4):
            sim.spawn(_worker(sim, sched, tenant, 0, 96 * KIB, 1e-4,
                              0.1, served))
    sim.run_until(sim.timeout(0.15))
    assert served["tiny"] > 0
    assert served["big"] > served["tiny"]


def test_untagged_io_schedules_as_system_tenant():
    sim = Simulator()
    sched = QosScheduler(sim)
    served = {SYSTEM_TENANT.name: 0}
    sim.spawn(_worker(sim, sched, SYSTEM_TENANT, 0, 4 * KIB, 1e-4,
                      0.01, served))

    def untagged():
        yield from sched.channel_acquire_proc(None, "read", 0, 4 * KIB)
        sched.channel_release(0)

    sim.run_until(sim.spawn(untagged()))
    assert served[SYSTEM_TENANT.name] >= 0   # no crash, shared flow


def test_reads_dispatch_before_writes():
    """With the gate busy, a later-queued read wins the next grant over
    earlier-queued writes (strict class priority)."""
    sim = Simulator()
    sched = QosScheduler(sim)
    tenant = TenantContext(1, "t")
    order = []

    def holder():
        yield from sched.channel_acquire_proc(tenant, "write", 0, 4 * KIB)
        yield sim.timeout(1e-3)
        sched.channel_release(0)

    def op(kind, name):
        yield from sched.channel_acquire_proc(tenant, kind, 0, 4 * KIB)
        order.append(name)
        sched.channel_release(0)

    sim.spawn(holder())
    sim.run_until(sim.timeout(1e-5))        # holder owns the gate
    sim.spawn(op("write", "w1"))
    sim.spawn(op("write", "w2"))
    sim.spawn(op("read", "r1"))
    sim.run_until(sim.timeout(2e-3))
    assert order[0] == "r1"


# -- background backpressure --------------------------------------------------


def test_background_gate_waits_and_caps():
    sim = Simulator()
    sched = QosScheduler(sim)
    sched.note_read_blocked(1)              # permanent foreground pressure

    def bg():
        yield from sched.background_gate_proc()

    sim.run_until(sim.spawn(bg()))
    # Capped: yields until bg_max_wait_s (to within one pause quantum),
    # then proceeds (no livelock).
    assert (sched.config.bg_max_wait_s <= sim.now
            <= sched.config.bg_max_wait_s + sched.config.bg_pause_s)
    sched.note_read_blocked(-1)
    before = sim.now
    sim.run_until(sim.spawn(bg()))
    assert sim.now == before                # no backlog: returns instantly


# -- device integration -------------------------------------------------------


def _tiny_device():
    geometry = DeviceGeometry(
        num_groups=2, pus_per_group=1,
        flash=FlashGeometry(blocks_per_plane=4, pages_per_block=6))
    return OpenChannelSSD(geometry=geometry)


def _fill_chunk(device, tenant):
    """Write chunk (0, 0, 0) full and flush it to NAND."""
    g = device.geometry
    unit = g.ws_min
    for start in range(0, g.sectors_per_chunk, unit):
        ppas = [Ppa(group=0, pu=0, chunk=0, sector=start + i)
                for i in range(unit)]
        done = device.execute(VectorWrite(
            ppas=ppas, data=[bytes(SECTOR)] * unit, tenant=tenant))
        assert done.status is CommandStatus.OK
    device.flush()


def _sequential_ops(device, tenant):
    """Write one chunk, flush, read it back, reset — strictly one command
    at a time; returns the per-op latency list."""
    g = device.geometry
    unit = g.ws_min
    latencies = []
    for start in range(0, g.sectors_per_chunk, unit):
        ppas = [Ppa(group=0, pu=0, chunk=0, sector=start + i)
                for i in range(unit)]
        done = device.execute(VectorWrite(
            ppas=ppas, data=[bytes(SECTOR)] * unit, tenant=tenant))
        assert done.status is CommandStatus.OK
        latencies.append(done.completed_at - done.submitted_at)
    device.flush()
    for sector in range(0, g.sectors_per_chunk, 7):
        done = device.execute(VectorRead(
            ppas=[Ppa(group=0, pu=0, chunk=0, sector=sector)],
            tenant=tenant))
        assert done.status is CommandStatus.OK
        latencies.append(done.completed_at - done.submitted_at)
    done = device.execute(ChunkReset(ppa=Ppa(group=0, pu=0, chunk=0,
                                             sector=0), tenant=tenant))
    assert done.status is CommandStatus.OK
    latencies.append(done.completed_at - done.submitted_at)
    return latencies


def test_empty_queue_bypass_adds_no_latency():
    """Single-tenant sequential I/O sees byte-identical latencies with
    and without a scheduler attached: the uncontended gate grants on the
    synchronous fast path, creating no events."""
    plain = _sequential_ops(_tiny_device(), None)

    device = _tiny_device()
    tenant = TenantContext(1, "only")
    scheduler = QosScheduler(device.sim).attach(device)
    scheduler.register_tenant(tenant)
    scheduled = _sequential_ops(device, tenant)

    assert scheduled == plain
    assert scheduler.fast_grants > 0
    assert scheduler.grants == 0            # nothing ever queued


def test_throttle_paces_device_reads():
    device = _tiny_device()
    sim = device.sim
    tenant = TenantContext(1, "capped",
                           rate_bytes_per_sec=float(SECTOR),
                           burst_bytes=float(SECTOR))
    scheduler = QosScheduler(sim).attach(device)
    scheduler.register_tenant(tenant)
    _fill_chunk(device, None)               # fill chunk 0 untagged
    started = sim.now

    def reads():
        for sector in range(4):
            yield from device.submit(VectorRead(
                ppas=[Ppa(group=0, pu=0, chunk=0, sector=sector)],
                tenant=tenant))

    sim.run_until(sim.spawn(reads()))
    # Burst covers the first sector; three more pace at 1 sector/second.
    assert sim.now - started >= 3.0
    assert scheduler.throttle_delays >= 3


def test_throttle_and_faults_compose():
    """A throttled tenant on a faulty device: probabilistic read faults
    surface as READ_FAILED completions, a power cut as POWER_FAIL, and
    the scheduler neither hangs nor leaks the channel."""
    device = _tiny_device()
    sim = device.sim
    tenant = TenantContext(1, "capped", rate_bytes_per_sec=1e9)
    scheduler = QosScheduler(sim).attach(device)
    scheduler.register_tenant(tenant)
    _fill_chunk(device, tenant)

    FaultInjector(FaultPlan(seed=3, read_fail_prob=0.4,
                            power_cut_at_op=60)).attach(device)
    statuses = []

    def reads():
        for __ in range(120):
            done = yield from device.submit(VectorRead(
                ppas=[Ppa(group=0, pu=0, chunk=0, sector=0)],
                tenant=tenant))
            statuses.append(done.status)

    sim.run_until(sim.spawn(reads()))
    assert len(statuses) == 120             # every op completed
    assert CommandStatus.READ_FAILED in statuses
    assert statuses[-1] is CommandStatus.POWER_FAIL
    # The channel is not leaked: a fresh single-op fast path still works.
    assert scheduler.queue_depth() == 0


# -- burst-amortized grant path ----------------------------------------------


def _burst_grant_order(burst_grants, seed):
    """Grant order for a random two-tenant backlog drained through a
    scheduler sweeping *burst_grants* approvals at a time."""
    import random as _random

    sim = Simulator()
    sched = QosScheduler(sim, QosConfig(burst_grants=burst_grants))
    a = TenantContext(1, "a", weight=3.0)
    b = TenantContext(2, "b", weight=1.0)
    order = []

    def holder():
        yield from sched.channel_acquire_proc(a, "write", 0, KIB)
        yield sim.timeout(1e-3)
        sched.channel_release(0)

    def op(tenant, name, cost):
        yield from sched.channel_acquire_proc(tenant, "write", 0, cost)
        order.append(name)
        yield sim.timeout(1e-4)
        sched.channel_release(0)

    sim.spawn(holder())
    sim.run_until(sim.timeout(1e-5))        # holder owns the gate first
    rng = _random.Random(seed)
    for index in range(24):
        tenant = a if rng.random() < 0.5 else b
        cost = rng.randrange(1, 5) * 24 * KIB
        sim.spawn(op(tenant, f"{tenant.name}{index}", cost))
    sim.run_until(sim.timeout(1.0))
    assert len(order) == 24                 # backlog fully drained
    return order


@pytest.mark.parametrize("seed", [3, 5, 9])
def test_drr_burst_order_matches_single_grant(seed):
    """A burst sweep approves in exactly the order repeated single-grant
    sweeps would serve — amortization must not reorder tenants."""
    assert _burst_grant_order(8, seed) == _burst_grant_order(1, seed)


def test_drr_burst_no_starvation():
    """Burst approvals for a heavy backlogged tenant never lock out a
    featherweight one: aging still promotes it within the window."""
    sim = Simulator()
    sched = QosScheduler(sim, QosConfig(burst_grants=8,
                                        starvation_rounds=8))
    heavy = TenantContext(1, "heavy", weight=1000.0)
    tiny = TenantContext(2, "tiny", weight=0.001)
    served = {"heavy": 0, "tiny": 0}
    for __ in range(8):
        sim.spawn(_worker(sim, sched, heavy, 0, 96 * KIB, 1e-4,
                          0.1, served))
    for __ in range(2):
        sim.spawn(_worker(sim, sched, tiny, 0, 96 * KIB, 1e-4,
                          0.1, served))
    sim.run_until(sim.timeout(0.15))
    assert served["tiny"] > 0
    assert served["heavy"] > served["tiny"]
