"""Tests for the flash chip model: program/erase/read rules and wear."""

import pytest

from repro.errors import MediaError, WritePointerError
from repro.nand import (
    BlockState,
    CellType,
    FlashChip,
    FlashGeometry,
    WearModel,
)


def small_chip(**overrides) -> FlashChip:
    defaults = dict(blocks_per_plane=4, pages_per_block=6)
    defaults.update(overrides)
    return FlashChip(geometry=FlashGeometry(**defaults))


class TestProgram:
    def test_program_full_block(self):
        chip = small_chip()
        total = chip.sectors_per_block
        unit = chip.geometry.write_unit_sectors
        for __ in range(total // unit):
            chip.program(0, unit)
        assert chip.blocks[0].state is BlockState.FULL

    def test_program_must_be_write_unit_multiple(self):
        chip = small_chip()
        with pytest.raises(WritePointerError):
            chip.program(0, chip.geometry.write_unit_sectors - 1)

    def test_program_overflow_rejected(self):
        chip = small_chip()
        chip.program(0, chip.sectors_per_block)
        with pytest.raises(WritePointerError):
            chip.program(0, chip.geometry.write_unit_sectors)

    def test_program_time_counts_paired_pages(self):
        """One write unit = `paired_pages` sequential multi-plane programs."""
        chip = small_chip()
        elapsed = chip.program(0, chip.geometry.write_unit_sectors)
        paired = chip.geometry.cell.bits_per_cell
        assert elapsed == pytest.approx(chip.timing.program_latency * paired)

    def test_program_on_bad_block_rejected(self):
        chip = FlashChip(geometry=FlashGeometry(blocks_per_plane=4,
                                                pages_per_block=6),
                         factory_bad=[1])
        with pytest.raises(MediaError):
            chip.program(1, chip.geometry.write_unit_sectors)


class TestErase:
    def test_erase_resets_block(self):
        chip = small_chip()
        chip.program(0, chip.sectors_per_block)
        chip.erase(0)
        block = chip.blocks[0]
        assert block.state is BlockState.FREE
        assert block.sectors_programmed == 0
        assert block.erase_count == 1

    def test_erase_beyond_endurance_retires_block(self):
        geometry = FlashGeometry(blocks_per_plane=2, pages_per_block=6)
        wear = WearModel(cell=CellType.TLC, endurance=3)
        chip = FlashChip(geometry=geometry, wear=wear)
        for __ in range(3):
            chip.erase(0)
        with pytest.raises(MediaError):
            chip.erase(0)
        assert chip.blocks[0].state is BlockState.BAD
        assert chip.bad_blocks() == [0]

    def test_grown_bad_block_is_deterministic_per_seed(self):
        def failures(seed):
            wear = WearModel(cell=CellType.TLC, grown_fail_prob=0.2,
                             seed=seed)
            chip = FlashChip(geometry=FlashGeometry(blocks_per_plane=8,
                                                    pages_per_block=6),
                             wear=wear)
            failed = []
            for block in range(8):
                try:
                    chip.erase(block)
                except MediaError:
                    failed.append(block)
            return failed

        assert failures(7) == failures(7)


class TestRead:
    def test_read_below_write_pointer_allowed(self):
        chip = small_chip()
        chip.program(0, chip.geometry.write_unit_sectors)
        elapsed = chip.read(0, 0, 1)
        assert elapsed == pytest.approx(chip.timing.read_latency)

    def test_read_above_write_pointer_rejected(self):
        chip = small_chip()
        chip.program(0, chip.geometry.write_unit_sectors)
        with pytest.raises(WritePointerError):
            chip.read(0, 0, chip.geometry.write_unit_sectors + 1)

    def test_read_time_counts_page_groups(self):
        """A read within one multi-plane page group costs one sense; a read
        spanning groups costs one sense per group."""
        chip = small_chip()
        chip.program(0, chip.sectors_per_block)
        group = chip.sectors_per_page_group
        assert chip.read(0, 0, group) == pytest.approx(
            chip.timing.read_latency)
        assert chip.read(0, 0, group + 1) == pytest.approx(
            chip.timing.read_latency * 2)
        # Unaligned single sector still costs one sense.
        assert chip.read(0, group - 1, 1) == pytest.approx(
            chip.timing.read_latency)

    def test_stats_accumulate(self):
        chip = small_chip()
        chip.program(0, chip.geometry.write_unit_sectors)
        chip.read(0, 0, 1)
        chip.erase(0)
        assert chip.stats.programs == chip.geometry.cell.bits_per_cell
        assert chip.stats.reads == 1
        assert chip.stats.erases == 1
        assert chip.stats.program_time > 0
        assert chip.stats.read_time > 0
        assert chip.stats.erase_time > 0

    def test_bad_block_index_rejected(self):
        chip = small_chip()
        with pytest.raises(MediaError):
            chip.erase(99)


class TestWearModel:
    def test_read_error_prob_grows_with_wear(self):
        wear = WearModel(cell=CellType.TLC, endurance=100)
        assert wear.read_error_prob(0) == 0.0
        assert wear.read_error_prob(50) < wear.read_error_prob(100)
        assert wear.read_error_prob(100) == pytest.approx(1e-3)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            WearModel(grown_fail_prob=1.5)
