"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Interrupt, Resource, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)
        return sim.now

    result = sim.run_until(sim.spawn(proc(sim)))
    assert result == 2.5
    assert sim.now == 2.5


def test_timeout_value_passed_to_process():
    sim = Simulator()

    def proc(sim):
        value = yield sim.timeout(1.0, value="payload")
        return value

    assert sim.run_until(sim.spawn(proc(sim))) == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(0.1)
        return 42

    assert sim.run_until(sim.spawn(proc(sim))) == 42


def test_process_joins_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3.0)
        return "child-done"

    def parent(sim):
        result = yield sim.spawn(child(sim))
        return (result, sim.now)

    assert sim.run_until(sim.spawn(parent(sim))) == ("child-done", 3.0)


def test_process_exception_propagates_to_joiner():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent(sim):
        try:
            yield sim.spawn(child(sim))
        except ValueError as exc:
            return f"caught {exc}"

    assert sim.run_until(sim.spawn(parent(sim))) == "caught boom"


def test_unjoined_process_failure_raises_from_run():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("unattended")

    sim.spawn(child(sim))
    with pytest.raises(ValueError, match="unattended"):
        sim.run()


def test_events_at_same_time_fire_in_creation_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.spawn(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_boundary():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(5.0)
        fired.append(sim.now)

    sim.spawn(proc(sim))
    sim.run(until=3.0)
    assert fired == []
    assert sim.now == 3.0
    sim.run(until=10.0)
    assert fired == [5.0]
    assert sim.now == 10.0


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_interrupt_wakes_waiting_process():
    sim = Simulator()

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, sim.now)
        return "slept"

    proc = sim.spawn(sleeper(sim))

    def killer(sim):
        yield sim.timeout(2.0)
        proc.interrupt(cause="kill -9")

    sim.spawn(killer(sim))
    assert sim.run_until(proc) == ("interrupted", "kill -9", 2.0)


def test_interrupt_abandons_original_wait():
    """After an interrupt, the stale timeout must not resume the process."""
    sim = Simulator()
    resumed = []

    def sleeper(sim):
        try:
            yield sim.timeout(5.0)
            resumed.append("timeout")
        except Interrupt:
            yield sim.timeout(10.0)   # outlives the abandoned timeout
            resumed.append("post-interrupt")

    proc = sim.spawn(sleeper(sim))

    def killer(sim):
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.spawn(killer(sim))
    sim.run()
    assert resumed == ["post-interrupt"]
    assert sim.now == 11.0


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(0.5)
        return "done"

    proc = sim.spawn(quick(sim))
    sim.run()
    proc.interrupt()  # must not raise
    sim.run()
    assert proc.value == "done"


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def proc(sim, delay, value):
        yield sim.timeout(delay)
        return value

    def main(sim):
        procs = [sim.spawn(proc(sim, 3.0, "slow")),
                 sim.spawn(proc(sim, 1.0, "fast"))]
        values = yield sim.all_of(procs)
        return (values, sim.now)

    assert sim.run_until(sim.spawn(main(sim))) == (["slow", "fast"], 3.0)


def test_all_of_empty_completes_immediately():
    sim = Simulator()

    def main(sim):
        values = yield sim.all_of([])
        return values

    assert sim.run_until(sim.spawn(main(sim))) == []


def test_any_of_returns_first_winner():
    sim = Simulator()

    def main(sim):
        winner = yield sim.any_of([sim.timeout(5.0, "slow"),
                                   sim.timeout(1.0, "fast")])
        return (winner, sim.now)

    assert sim.run_until(sim.spawn(main(sim))) == ((1, "fast"), 1.0)


def test_event_succeed_twice_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event().fail("not an exception")


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield "not an event"

    proc = sim.spawn(bad(sim))
    with pytest.raises(SimulationError, match="may only yield"):
        sim.run_until(proc)


def test_deadlock_detection_in_run_until():
    sim = Simulator()

    def stuck(sim):
        yield sim.event()  # never triggered by anyone

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until(sim.spawn(stuck(sim)))


def test_determinism_two_identical_runs():
    """Two simulations of the same program produce identical traces."""

    def build_trace():
        sim = Simulator()
        trace = []

        def worker(sim, tag, delay):
            for __ in range(3):
                yield sim.timeout(delay)
                trace.append((tag, sim.now))

        sim.spawn(worker(sim, "x", 1.0))
        sim.spawn(worker(sim, "y", 0.7))
        sim.run()
        return trace

    assert build_trace() == build_trace()


# -- calendar-queue vs heapq engine equivalence -------------------------------
#
# HeapqSimulator is the executable specification of scheduling order (one
# (time, sequence) heap entry per event); the production Simulator must
# reproduce it exactly — same clock, same event counts, same per-op
# latencies — on workloads that stress shared-instant buckets, resource
# queues, and process joins.


def _randomized_storm(sim, seed, workers=8, ops=40):
    """Drive a random mix of timeouts, resource holds, and child joins;
    return the per-op latency trace (engine-order sensitive: quantized
    delays force many events to share trigger instants)."""
    import random as _random

    resource = Resource(sim, capacity=2)
    latencies = []

    def worker(wid):
        rng = _random.Random(seed * 1000 + wid)
        for __ in range(ops):
            started = sim.now
            choice = rng.random()
            if choice < 0.5:
                yield sim.timeout(rng.randrange(0, 8) * 0.25)
            elif choice < 0.8:
                if not resource.try_acquire():
                    yield resource.request(rng.randrange(-1, 2))
                yield sim.timeout(rng.randrange(1, 4) * 0.125)
                resource.release()
            else:
                def child(delay):
                    yield sim.timeout(delay)
                    return delay
                yield sim.spawn(child(rng.randrange(0, 5) * 0.5))
            latencies.append((wid, round(sim.now - started, 9)))

    done = sim.all_of([sim.spawn(worker(wid)) for wid in range(workers)])
    sim.run_until(done)
    return latencies


@pytest.mark.parametrize("seed", [1, 2, 3, 11, 29])
def test_engine_equivalence_randomized(seed):
    from repro.sim.core import HeapqSimulator

    runs = []
    for engine in (Simulator, HeapqSimulator):
        sim = engine()
        latencies = _randomized_storm(sim, seed)
        runs.append((sim.now, sim.events_processed, latencies))
    calendar, heapq_ref = runs
    assert calendar[0] == heapq_ref[0]      # identical clocks
    assert calendar[1] == heapq_ref[1]      # identical event counts
    assert calendar[2] == heapq_ref[2]      # identical op latencies
