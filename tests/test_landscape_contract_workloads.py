"""Tests for the Figure 1 taxonomy, performance contracts and workload
generators."""

import pytest

from repro.contract import (
    ContractTerm,
    PerformanceContract,
    characterize_device,
)
from repro.errors import ContractViolation, ReproError
from repro.landscape import (
    FTL_ABSTRACTIONS,
    FTL_PLACEMENTS,
    SSD_MODELS,
    FtlAbstraction,
    FtlPlacement,
    FtlTransparency,
    figure1_grid,
    models_in_quadrant,
    render_figure1,
)
from repro.nand import FlashGeometry, timing_for
from repro.ocssd import DeviceGeometry, OpenChannelSSD
from repro.workloads import (
    KeyValueGenerator,
    RandomWriteWorkload,
    ZipfianKeyChooser,
)
from repro.units import MIB


class TestLandscape:
    def test_every_model_placed(self):
        grid = figure1_grid()
        placed = sum(len(models) for models in grid.values())
        assert placed == len(SSD_MODELS) == 13

    def test_traditional_and_smartssd_share_a_quadrant(self):
        """§3.1: 'traditional SSDs and SmartSSD are in the same quadrant'."""
        quadrant = models_in_quadrant(FtlAbstraction.BLOCK_DEVICE,
                                      FtlPlacement.CONTROLLER)
        names = {model.name for model in quadrant}
        assert "Traditional SSDs" in names
        assert "Smart SSD" in names

    def test_ox_ftls_are_controller_side_white_boxes(self):
        for name in ("OX-Block", "OX-Eleos, LightLSM"):
            model = next(m for m in SSD_MODELS if m.name == name)
            assert model.placement is FtlPlacement.CONTROLLER
            assert model.transparency is FtlTransparency.WHITE_BOX

    def test_unavailable_models_flagged(self):
        unavailable = {m.name for m in SSD_MODELS if not m.available}
        assert unavailable == {"LightNVM target for ZNS", "ZNS SSD",
                               "OX-ZNS"}

    def test_every_quadrant_column_covered(self):
        """Open-Channel-based designs appear in all three abstraction
        columns (§3.2: OCSSDs 'appear in all the quadrants')."""
        for abstraction in FTL_ABSTRACTIONS:
            assert any(models_in_quadrant(abstraction, placement)
                       for placement in FTL_PLACEMENTS)

    def test_render_contains_all_models(self):
        text = render_figure1()
        for model in SSD_MODELS:
            assert model.name.split(",")[0] in text

    def test_dimensions_exposed(self):
        model = SSD_MODELS[0]
        dims = model.dimensions()
        assert set(dims) == {"abstraction", "placement", "chips",
                             "integration", "transparency", "access"}


def small_device():
    geometry = DeviceGeometry(
        num_groups=2, pus_per_group=2,
        flash=FlashGeometry(blocks_per_plane=8, pages_per_block=6))
    return OpenChannelSSD(geometry=geometry)


class TestPerformanceContract:
    def test_characterization_produces_metrics(self):
        metrics = characterize_device(small_device(), samples=8)
        assert metrics["write_unit_mean"] > 0
        assert metrics["read_sector_mean"] > 0
        assert metrics["read_sector_p99"] >= metrics["read_sector_mean"]
        assert metrics["endurance"] > 0

    def test_satisfied_contract_passes(self):
        metrics = characterize_device(small_device(), samples=8)
        contract = PerformanceContract([
            ContractTerm("read_sector_p99", metrics["read_sector_p99"] * 2),
            ContractTerm("write_unit_mean", metrics["write_unit_mean"] * 2),
        ])
        report = contract.check(metrics)
        assert report.passed
        report.require()   # no raise

    def test_violated_contract_reports_term(self):
        metrics = characterize_device(small_device(), samples=8)
        contract = PerformanceContract([
            ContractTerm("read_sector_p99",
                         metrics["read_sector_p99"] / 1e3,
                         "ultra-low-latency clause"),
        ])
        report = contract.check(metrics)
        assert not report.passed
        assert "read_sector_p99" in report.violations[0]
        with pytest.raises(ContractViolation):
            report.require()

    def test_unmeasured_metric_is_a_violation(self):
        contract = PerformanceContract([ContractTerm("made_up", 1.0)])
        assert not contract.check({}).passed

    def test_wear_aware_characterization(self):
        """§5: contracts taking wear into account — latency/error budgets
        can be evaluated at a chosen wear level."""
        fresh = characterize_device(small_device(), samples=8)
        aged = characterize_device(small_device(), samples=8,
                                   wear_cycles=2500)
        contract = PerformanceContract([
            ContractTerm("endurance", 5000, "TLC-class endurance cap")])
        assert contract.check(fresh).passed
        assert contract.check(aged).passed

    def test_duplicate_terms_rejected(self):
        with pytest.raises(ValueError):
            PerformanceContract([ContractTerm("x", 1.0),
                                 ContractTerm("x", 2.0)])


class TestWorkloads:
    def test_kv_generator_deterministic(self):
        generator = KeyValueGenerator()
        assert generator.key(42) == generator.key(42)
        assert len(generator.key(42)) == 16
        assert len(generator.value(42)) == 1024

    def test_random_write_sizes_bounded(self):
        """Figure 3 workload: random writes of up to 1 MB."""
        workload = RandomWriteWorkload(lba_space=10_000, seed=1)
        ops = list(workload.operations(200))
        assert len(ops) == 200
        max_sectors = MIB // 4096
        assert all(1 <= op.num_sectors <= max_sectors for op in ops)
        assert all(0 <= op.lba < 10_000 for op in ops)
        assert all(op.lba + op.num_sectors <= 10_000 for op in ops)

    def test_random_write_deterministic_per_seed(self):
        first = list(RandomWriteWorkload(10_000, seed=7).operations(50))
        second = list(RandomWriteWorkload(10_000, seed=7).operations(50))
        assert first == second
        other = list(RandomWriteWorkload(10_000, seed=8).operations(50))
        assert first != other

    def test_payload_size(self):
        op = next(iter(RandomWriteWorkload(10_000, seed=1).operations(1)))
        assert len(op.payload(4096)) == op.num_sectors * 4096

    def test_zipfian_skew(self):
        chooser = ZipfianKeyChooser(key_space=1000, theta=0.99, seed=3)
        samples = chooser.sample(5000)
        assert all(0 <= s < 1000 for s in samples)
        head = sum(1 for s in samples if s < 10)
        assert head > 0.2 * len(samples)   # heavy head

    def test_zipfian_parameters_validated(self):
        with pytest.raises(ReproError, match="key_space"):
            ZipfianKeyChooser(0)
        with pytest.raises(ReproError, match="theta"):
            ZipfianKeyChooser(10, theta=2.5)
