"""Integration tests for the Open-Channel SSD device model: commands,
write-back cache, crash semantics, parallelism and interference timing."""

import pytest

from repro.nand import FlashGeometry
from repro.ocssd import (
    ChunkReset,
    ChunkState,
    CommandStatus,
    DeviceGeometry,
    OpenChannelSSD,
    Ppa,
    VectorWrite,
)


def tiny_device(**kwargs) -> OpenChannelSSD:
    geometry = kwargs.pop("geometry", None) or DeviceGeometry(
        num_groups=2, pus_per_group=2,
        flash=FlashGeometry(blocks_per_plane=4, pages_per_block=6))
    return OpenChannelSSD(geometry=geometry, **kwargs)


def seq_ppas(device, group=0, pu=0, chunk=0, start=0, count=None):
    count = count or device.geometry.ws_min
    return [Ppa(group, pu, chunk, start + i) for i in range(count)]


def unit_payloads(device, fill=0xAB, count=None):
    count = count or device.geometry.ws_min
    return [bytes([fill]) * device.geometry.sector_size
            for __ in range(count)]


class TestWriteRead:
    def test_write_then_read_roundtrip(self):
        device = tiny_device()
        ppas = seq_ppas(device)
        data = [bytes([i % 251]) * 16 for i in range(len(ppas))]
        completion = device.write(ppas, data, oob=list(range(len(ppas))))
        assert completion.ok
        read = device.read(ppas)
        assert read.ok
        assert read.data == data
        assert read.oob == list(range(len(ppas)))

    def test_scattered_read_across_chunks(self):
        device = tiny_device()
        for (group, pu) in [(0, 0), (1, 1)]:
            device.write(seq_ppas(device, group=group, pu=pu),
                         unit_payloads(device, fill=group * 16 + pu))
        read = device.read([Ppa(0, 0, 0, 3), Ppa(1, 1, 0, 5)])
        assert read.ok
        assert read.data[0] == bytes([0]) * device.geometry.sector_size
        assert read.data[1] == bytes([17]) * device.geometry.sector_size

    def test_write_not_at_pointer_is_invalid(self):
        device = tiny_device()
        ws = device.geometry.ws_min
        completion = device.write(
            seq_ppas(device, start=ws), unit_payloads(device))
        assert completion.status is CommandStatus.INVALID

    def test_sub_ws_min_write_is_invalid(self):
        device = tiny_device()
        completion = device.write([Ppa(0, 0, 0, 0)],
                                  [b"x" * device.geometry.sector_size])
        assert completion.status is CommandStatus.INVALID

    def test_read_unwritten_sector_is_invalid(self):
        device = tiny_device()
        completion = device.read([Ppa(0, 0, 0, 0)])
        assert completion.status is CommandStatus.INVALID

    def test_vector_write_is_not_atomic(self):
        """§4.3: vector operations are not atomic — a mid-vector validation
        error leaves earlier runs admitted."""
        device = tiny_device()
        ws = device.geometry.ws_min
        good = seq_ppas(device, chunk=0)
        bad = seq_ppas(device, chunk=1, start=ws)  # not at write pointer
        completion = device.write(good + bad, unit_payloads(device, count=2 * ws))
        assert completion.status is CommandStatus.INVALID
        assert device.chunk_info(good[0]).write_pointer == ws
        assert device.chunk_info(bad[0]).write_pointer == 0


class TestChunkLifecycle:
    def test_chunk_closes_when_full(self):
        device = tiny_device()
        total = device.geometry.sectors_per_chunk
        device.write(seq_ppas(device, count=total),
                     unit_payloads(device, count=total))
        assert device.chunk_info(Ppa(0, 0, 0, 0)).state is ChunkState.CLOSED

    def test_reset_reopens_chunk(self):
        device = tiny_device()
        total = device.geometry.sectors_per_chunk
        device.write(seq_ppas(device, count=total),
                     unit_payloads(device, count=total))
        device.flush()
        completion = device.reset(Ppa(0, 0, 0, 0))
        assert completion.ok
        info = device.chunk_info(Ppa(0, 0, 0, 0))
        assert info.state is ChunkState.FREE
        assert info.write_pointer == 0
        assert info.wear_index == 1
        assert device.write(seq_ppas(device), unit_payloads(device)).ok

    def test_iter_chunk_info_covers_device(self):
        device = tiny_device()
        infos = list(device.iter_chunk_info())
        assert len(infos) == device.geometry.total_chunks


class TestCopy:
    def test_copy_moves_data_and_oob(self):
        device = tiny_device()
        src = seq_ppas(device, chunk=0)
        dst = seq_ppas(device, group=1, pu=0, chunk=1)
        data = [bytes([i]) * 8 for i in range(len(src))]
        device.write(src, data, oob=[100 + i for i in range(len(src))])
        completion = device.copy(src, dst)
        assert completion.ok
        read = device.read(dst)
        assert read.data == data
        assert read.oob == [100 + i for i in range(len(src))]


class TestCrashSemantics:
    def test_unflushed_writes_lost_on_crash(self):
        device = tiny_device()
        ppas = seq_ppas(device)
        device.write(ppas, unit_payloads(device))
        # No flush: data sits in the write-back cache.
        device.crash_volatile()
        info = device.chunk_info(ppas[0])
        assert info.write_pointer == 0
        assert info.state is ChunkState.FREE

    def test_flushed_writes_survive_crash(self):
        device = tiny_device()
        ppas = seq_ppas(device)
        data = unit_payloads(device, fill=7)
        device.write(ppas, data)
        device.flush()
        device.crash_volatile()
        read = device.read(ppas)
        assert read.ok
        assert read.data == data

    def test_background_flush_eventually_persists(self):
        """Even without an explicit flush, the flusher drains the cache;
        a crash after enough idle time loses nothing."""
        device = tiny_device()
        ppas = seq_ppas(device)
        device.write(ppas, unit_payloads(device))
        device.sim.run()          # let the flusher finish
        device.crash_volatile()
        assert device.chunk_info(ppas[0]).write_pointer == len(ppas)

    def test_write_through_device_needs_no_flush(self):
        device = tiny_device(write_back=False)
        ppas = seq_ppas(device)
        device.write(ppas, unit_payloads(device))
        device.crash_volatile()
        assert device.chunk_info(ppas[0]).write_pointer == len(ppas)


class TestTimingModel:
    def test_write_back_write_is_faster_than_write_through(self):
        wb = tiny_device(write_back=True)
        wt = tiny_device(write_back=False)
        lat_wb = wb.write(seq_ppas(wb), unit_payloads(wb)).latency
        lat_wt = wt.write(seq_ppas(wt), unit_payloads(wt)).latency
        assert lat_wb < lat_wt

    def test_read_slower_than_cached_write(self):
        """The Figure 5 asymmetry: writes complete at cache speed, reads
        must touch the media."""
        device = tiny_device()
        write_lat = device.write(seq_ppas(device),
                                 unit_payloads(device)).latency
        device.flush()
        read_lat = device.read(seq_ppas(device)).latency
        assert read_lat > write_lat

    def test_chunks_on_different_groups_write_in_parallel(self):
        device = tiny_device()
        ws = device.geometry.ws_min

        def one(device, group):
            return device.submit(VectorWrite(
                ppas=seq_ppas(device, group=group),
                data=unit_payloads(device)))

        sim = device.sim
        procs = [sim.spawn(one(device, group)) for group in (0, 1)]
        sim.run_until(sim.all_of(procs))
        both = sim.now
        # Sequential baseline on a fresh device: same two writes, one group.
        device2 = tiny_device()
        start = device2.sim.now
        device2.write(seq_ppas(device2, chunk=0), unit_payloads(device2))
        device2.write(seq_ppas(device2, chunk=1), unit_payloads(device2))
        sequential = device2.sim.now - start
        assert both < sequential

    def test_same_chip_reads_serialize(self):
        """Operations are sequential within a chip (§2.1)."""
        device = tiny_device()
        total = device.geometry.sectors_per_chunk
        device.write(seq_ppas(device, count=total),
                     unit_payloads(device, count=total))
        device.flush()
        single = device.read([Ppa(0, 0, 0, 0)]).latency
        sim = device.sim
        from repro.ocssd import VectorRead
        procs = [sim.spawn(device.submit(VectorRead([Ppa(0, 0, 0, s)])))
                 for s in range(4)]
        start = sim.now
        sim.run_until(sim.all_of(procs))
        elapsed = sim.now - start
        # Four senses on one chip serialize: at least 4x one media sense.
        chip = device.chips[(0, 0)]
        assert elapsed >= 4 * chip.timing.read_latency

    def test_reads_on_different_groups_do_not_interfere(self):
        device = tiny_device()
        for group in (0, 1):
            device.write(seq_ppas(device, group=group),
                         unit_payloads(device))
        device.flush()
        single = device.read([Ppa(0, 0, 0, 0)]).latency
        sim = device.sim
        from repro.ocssd import VectorRead
        procs = [sim.spawn(device.submit(VectorRead([Ppa(g, 0, 0, 1)])))
                 for g in (0, 1)]
        start = sim.now
        sim.run_until(sim.all_of(procs))
        elapsed = sim.now - start
        assert elapsed == pytest.approx(single, rel=0.01)


class TestNotificationsAndWear:
    def test_program_failure_reported_asynchronously(self):
        """With write-back, a program failure after completion surfaces in
        the notification log and the chunk goes offline (§2.2)."""
        geometry = DeviceGeometry(
            num_groups=1, pus_per_group=1,
            flash=FlashGeometry(blocks_per_plane=2, pages_per_block=6))
        device = OpenChannelSSD(geometry=geometry, grown_fail_prob=1.0)
        ppas = seq_ppas(device)
        # Erase-before-anything is clean; force wear by resetting first.
        completion = device.reset(Ppa(0, 0, 0, 0))
        assert completion.status is CommandStatus.RESET_FAILED
        notes = device.pop_notifications()
        assert notes and notes[0].kind == "reset-failed"
        assert device.chunk_info(Ppa(0, 0, 0, 0)).state is ChunkState.OFFLINE

    def test_notifications_drain(self):
        device = tiny_device()
        assert device.pop_notifications() == []


class TestControllerStats:
    def test_sector_counters(self):
        device = tiny_device()
        ws = device.geometry.ws_min
        device.write(seq_ppas(device), unit_payloads(device))
        device.read(seq_ppas(device))
        stats = device.controller.stats
        assert stats.sectors_written == ws
        assert stats.sectors_read == ws
        # Unflushed data is served from the cache.
        assert stats.sectors_read_from_cache == ws
