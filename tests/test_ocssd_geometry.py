"""Tests for PPA addressing and device geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, Ppa
from repro.units import MIB


def tiny_geometry() -> DeviceGeometry:
    return DeviceGeometry(num_groups=2, pus_per_group=3,
                          flash=FlashGeometry(blocks_per_plane=5,
                                              pages_per_block=6))


class TestPpa:
    def test_ordering_is_hierarchical(self):
        assert Ppa(0, 0, 0, 5) < Ppa(0, 0, 1, 0) < Ppa(0, 1, 0, 0) \
            < Ppa(1, 0, 0, 0)

    def test_chunk_address_zeroes_sector(self):
        assert Ppa(1, 2, 3, 4).chunk_address() == Ppa(1, 2, 3, 0)

    def test_chunk_key(self):
        assert Ppa(1, 2, 3, 4).chunk_key() == (1, 2, 3)

    def test_with_sector(self):
        assert Ppa(1, 2, 3, 4).with_sector(9) == Ppa(1, 2, 3, 9)

    def test_hashable(self):
        assert len({Ppa(0, 0, 0, 0), Ppa(0, 0, 0, 0), Ppa(0, 0, 0, 1)}) == 2


class TestDeviceGeometry:
    def test_paper_figure4_geometry(self):
        """Figure 4: 8 groups x 4 PUs, 6144 4KB sectors per chunk = 24 MB;
        SSTable = #groups x #PUs x chunk size = 768 MB."""
        geometry = DeviceGeometry(
            num_groups=8, pus_per_group=4,
            flash=FlashGeometry(pages_per_block=768))
        assert geometry.chunk_size == 24 * MIB
        assert geometry.ws_min == 24
        sstable = geometry.num_groups * geometry.pus_per_group \
            * geometry.chunk_size
        assert sstable == 768 * MIB

    def test_totals(self):
        geometry = tiny_geometry()
        assert geometry.total_pus == 6
        assert geometry.total_chunks == 6 * 5
        assert geometry.capacity_bytes == geometry.total_chunks \
            * geometry.chunk_size

    def test_check_rejects_out_of_range(self):
        geometry = tiny_geometry()
        geometry.check(Ppa(1, 2, 4, 47))
        for bad in (Ppa(2, 0, 0, 0), Ppa(0, 3, 0, 0), Ppa(0, 0, 5, 0),
                    Ppa(0, 0, 0, 48), Ppa(-1, 0, 0, 0)):
            with pytest.raises(GeometryError):
                geometry.check(bad)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(GeometryError):
            DeviceGeometry(num_groups=0)
        with pytest.raises(GeometryError):
            DeviceGeometry(pus_per_group=0)

    def test_iter_pus_order(self):
        geometry = tiny_geometry()
        pus = list(geometry.iter_pus())
        assert pus[0] == (0, 0)
        assert pus[-1] == (1, 2)
        assert len(pus) == 6

    def test_linearize_is_address_ordered(self):
        geometry = tiny_geometry()
        previous = -1
        for group, pu in geometry.iter_pus():
            for chunk in range(geometry.chunks_per_pu):
                for sector in (0, geometry.sectors_per_chunk - 1):
                    index = geometry.linearize(Ppa(group, pu, chunk, sector))
                    assert index > previous
                    previous = index


@given(st.integers(0, 1), st.integers(0, 2), st.integers(0, 4),
       st.integers(0, 47))
def test_linearize_roundtrip(group, pu, chunk, sector):
    geometry = tiny_geometry()
    ppa = Ppa(group, pu, chunk, sector)
    assert geometry.delinearize(geometry.linearize(ppa)) == ppa


@given(st.integers())
def test_delinearize_range_checked(index):
    geometry = tiny_geometry()
    total = geometry.total_chunks * geometry.sectors_per_chunk
    if 0 <= index < total:
        assert geometry.linearize(geometry.delinearize(index)) == index
    else:
        with pytest.raises(GeometryError):
            geometry.delinearize(index)
