"""Tests for the chunk state machine, including a property-based check of
the sequential-write invariant."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ChunkStateError, WritePointerError, WriteUnitError
from repro.ocssd import Chunk, ChunkState, Ppa


def make_chunk(capacity=48, ws_min=12) -> Chunk:
    return Chunk(Ppa(0, 0, 0, 0), capacity=capacity, ws_min=ws_min)


def payloads(n, fill=0):
    return [bytes([fill]) for __ in range(n)]


class TestWriteRules:
    def test_sequential_writes_advance_pointer(self):
        chunk = make_chunk()
        chunk.admit_write(0, payloads(12))
        assert chunk.write_pointer == 12
        assert chunk.state is ChunkState.OPEN
        chunk.admit_write(12, payloads(12))
        assert chunk.write_pointer == 24

    def test_full_chunk_closes(self):
        chunk = make_chunk()
        chunk.admit_write(0, payloads(48))
        assert chunk.state is ChunkState.CLOSED
        with pytest.raises(ChunkStateError):
            chunk.admit_write(48, payloads(12))

    def test_nonsequential_write_rejected(self):
        chunk = make_chunk()
        chunk.admit_write(0, payloads(12))
        with pytest.raises(WritePointerError):
            chunk.admit_write(24, payloads(12))
        with pytest.raises(WritePointerError):
            chunk.admit_write(0, payloads(12))

    def test_ws_min_violation_rejected(self):
        chunk = make_chunk()
        with pytest.raises(WriteUnitError):
            chunk.admit_write(0, payloads(7))
        with pytest.raises(WriteUnitError):
            chunk.admit_write(0, [])

    def test_overflow_rejected(self):
        chunk = make_chunk()
        chunk.admit_write(0, payloads(48))
        chunk2 = make_chunk()
        with pytest.raises(WritePointerError):
            chunk2.admit_write(0, payloads(60))

    def test_oob_length_must_match(self):
        chunk = make_chunk()
        with pytest.raises(WriteUnitError):
            chunk.admit_write(0, payloads(12), oobs=[1, 2, 3])


class TestReadRules:
    def test_read_returns_written_payloads(self):
        chunk = make_chunk()
        data = [bytes([i]) for i in range(12)]
        chunk.admit_write(0, data, oobs=list(range(12)))
        assert chunk.read(0, 12) == data
        assert chunk.read_oob(3, 2) == [3, 4]

    def test_read_above_write_pointer_rejected(self):
        chunk = make_chunk()
        chunk.admit_write(0, payloads(12))
        with pytest.raises(WritePointerError):
            chunk.read(6, 12)
        with pytest.raises(WritePointerError):
            chunk.read(12, 1)


class TestResetAndFailure:
    def test_reset_clears_everything(self):
        chunk = make_chunk()
        chunk.admit_write(0, payloads(48), oobs=list(range(48)))
        chunk.reset()
        assert chunk.state is ChunkState.FREE
        assert chunk.write_pointer == 0
        assert chunk.wear_index == 1
        chunk.admit_write(0, payloads(12))  # writable again

    def test_offline_chunk_rejects_everything(self):
        chunk = make_chunk()
        chunk.retire()
        assert chunk.state is ChunkState.OFFLINE
        with pytest.raises(ChunkStateError):
            chunk.admit_write(0, payloads(12))
        with pytest.raises(ChunkStateError):
            chunk.read(0, 1)
        with pytest.raises(ChunkStateError):
            chunk.reset()

    def test_rollback_drops_unflushed_sectors(self):
        chunk = make_chunk()
        chunk.admit_write(0, payloads(24, fill=1))
        chunk.mark_flushed(12)
        chunk.rollback_unflushed()
        assert chunk.write_pointer == 12
        assert chunk.state is ChunkState.OPEN
        assert chunk.read(0, 12) == payloads(12, fill=1)
        with pytest.raises(WritePointerError):
            chunk.read(12, 1)

    def test_rollback_to_zero_frees_chunk(self):
        chunk = make_chunk()
        chunk.admit_write(0, payloads(12))
        chunk.rollback_unflushed()
        assert chunk.state is ChunkState.FREE
        assert chunk.write_pointer == 0

    def test_fully_flushed_closed_chunk_survives_rollback(self):
        chunk = make_chunk()
        chunk.admit_write(0, payloads(48))
        chunk.mark_flushed(48)
        chunk.rollback_unflushed()
        assert chunk.state is ChunkState.CLOSED
        assert chunk.write_pointer == 48

    def test_mark_flushed_cannot_regress_or_overshoot(self):
        chunk = make_chunk()
        chunk.admit_write(0, payloads(24))
        chunk.mark_flushed(12)
        with pytest.raises(WritePointerError):
            chunk.mark_flushed(6)
        with pytest.raises(WritePointerError):
            chunk.mark_flushed(36)


@given(st.lists(st.integers(1, 4), min_size=0, max_size=8),
       st.integers(0, 100))
def test_write_pointer_invariant(write_units, flush_fraction):
    """Property: after any sequence of valid writes and one flush mark, the
    pointers satisfy 0 <= flushed <= write_pointer <= capacity, the write
    pointer is the sum of admitted sectors, and rollback restores exactly
    the flushed prefix."""
    ws_min = 6
    capacity = 48
    chunk = make_chunk(capacity=capacity, ws_min=ws_min)
    admitted = 0
    for units in write_units:
        count = units * ws_min
        if admitted + count > capacity:
            with pytest.raises((WritePointerError, ChunkStateError)):
                chunk.admit_write(admitted, payloads(count))
            continue
        chunk.admit_write(admitted, payloads(count, fill=units))
        admitted += count
    assert chunk.write_pointer == admitted
    flushed = (admitted * flush_fraction) // 100
    chunk.mark_flushed(flushed)
    assert 0 <= chunk.flushed_pointer <= chunk.write_pointer <= capacity
    chunk.rollback_unflushed()
    assert chunk.write_pointer == flushed
    if flushed:
        assert all(p is not None for p in chunk.read(0, flushed))
