"""The LSM concurrency plane (PR 10): frozen-memtable FIFO + flush
workers, the compaction executor's input locking, the backpressure
state machine, the heapq k-way merge, and the multi-worker write
dispatcher."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.lsm import DB, DBConfig, MemEnv, TOMBSTONE
from repro.lsm.backpressure import OK, SLOWDOWN, STOP, BackpressureState
from repro.lsm.compaction import (
    CompactionExecutor,
    CompactionPick,
    MemCursor,
    TableRef,
    merge_into_linear_proc,
    merge_into_proc,
    pick_compaction,
)
from repro.lsm.envbase import WriteDispatcher
from repro.lsm.memtable import ImmutableMemtable, MemTable
from repro.lsm.sstable import build_sstable
from repro.obs import Obs
from repro.sim import Simulator


def make_db(obs=False, write_latency=1e-6, **config_overrides):
    sim = Simulator()
    if obs:
        hub = Obs()
        hub.sim = sim
        hub.tracer.sim = sim
        sim.obs = hub
    env = MemEnv(sim, read_latency=1e-6, write_latency=write_latency,
                 manifest_required=True)
    defaults = dict(block_size=1024, write_buffer_bytes=16 * 1024,
                    sstable_data_bytes=16 * 1024)
    defaults.update(config_overrides)
    return sim, env, DB(env, DBConfig(**defaults), sim)


def key(i):
    return f"{i:012d}".encode()


def table_ref(sstable_id, items, block_size=256):
    data = build_sstable(sstable_id, sstable_id, block_size, iter(items))
    return TableRef(handle=None, meta=data.meta)


def span_ref(sstable_id, first, last):
    items = ([(first, b"x")] if first == last
             else [(first, b"x"), (last, b"y")])
    return table_ref(sstable_id, items)


# -- heapq merge == linear merge, bit for bit --------------------------------------


class RecordingCursor(MemCursor):
    """A MemCursor that logs every advance, so the two merge
    implementations can be compared on *order of work*, not just
    output."""

    def __init__(self, items, index, log):
        super().__init__(items)
        self.index = index
        self.log = log

    def advance_proc(self):
        self.log.append(self.index)
        return super().advance_proc()


def run_merge(merge, streams, drop_tombstones):
    sim = Simulator()
    log = []
    cursors = [RecordingCursor(items, index, log)
               for index, items in enumerate(streams)]
    out = []

    def sink(k, v):
        out.append((k, v))
        return
        yield

    emitted = sim.run_until(sim.spawn(
        merge(cursors, sink, drop_tombstones)))
    return emitted, out, log


class TestHeapMergeIdentity:
    OVERLAPPING_TOMBSTONES = [
        # newest first: tombstones shadowing older values, duplicates
        # across all three streams, and keys unique to each.
        [(b"a", TOMBSTONE), (b"b", b"new-b"), (b"c", TOMBSTONE)],
        [(b"a", b"old-a"), (b"b", b"old-b"), (b"d", b"old-d")],
        [(b"c", b"oldest-c"), (b"d", TOMBSTONE), (b"e", b"only-e")],
    ]

    @pytest.mark.parametrize("drop", [False, True])
    def test_overlapping_tombstones_identical(self, drop):
        heap = run_merge(merge_into_proc,
                         self.OVERLAPPING_TOMBSTONES, drop)
        linear = run_merge(merge_into_linear_proc,
                           self.OVERLAPPING_TOMBSTONES, drop)
        assert heap == linear

    def test_tombstone_semantics(self):
        # a: newest is a tombstone -> dropped.  c: newest is a tombstone
        # -> dropped.  d: the tombstone is *older* than old-d, so the
        # value survives.  b, e: plain newest-wins.
        emitted, out, __ = run_merge(
            merge_into_proc, self.OVERLAPPING_TOMBSTONES, True)
        assert out == [(b"b", b"new-b"), (b"d", b"old-d"),
                       (b"e", b"only-e")]
        assert emitted == 3

    def test_newest_first_tiebreak(self):
        __, out, log = run_merge(
            merge_into_proc,
            [[(b"k", b"newest")], [(b"k", b"mid")], [(b"k", b"oldest")]],
            False)
        assert out == [(b"k", b"newest")]
        __, linear_out, linear_log = run_merge(
            merge_into_linear_proc,
            [[(b"k", b"newest")], [(b"k", b"mid")], [(b"k", b"oldest")]],
            False)
        assert out == linear_out
        assert log == linear_log   # duplicate holders advance in order

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.lists(st.tuples(st.binary(min_size=1, max_size=4),
                           st.one_of(st.binary(max_size=4),
                                     st.just(TOMBSTONE))),
                 max_size=20),
        min_size=1, max_size=5),
        st.booleans())
    def test_property_identical_to_linear(self, raw_streams, drop):
        # Sort + per-stream dedup, as real cursor sources are.
        streams = [sorted({k: v for k, v in raw}.items(),
                          key=lambda kv: kv[0])
                   for raw in raw_streams]
        assert run_merge(merge_into_proc, streams, drop) \
            == run_merge(merge_into_linear_proc, streams, drop)


# -- the frozen-memtable FIFO ------------------------------------------------------


class TestImmutableMemtable:
    def test_freeze_snapshots(self):
        mem = MemTable()
        mem.put(b"b", b"2")
        mem.put(b"a", b"1")
        mem.delete(b"c")
        frozen = mem.freeze(seq=7)
        mem.put(b"z", b"later")   # must not leak into the snapshot
        assert frozen.seq == 7
        assert len(frozen) == 3
        assert frozen.items == [(b"a", b"1"), (b"b", b"2"),
                                (b"c", TOMBSTONE)]
        assert frozen.get(b"a") == b"1"
        assert frozen.get(b"c") is TOMBSTONE
        assert frozen.get(b"z") is None
        assert frozen.state == ImmutableMemtable.QUEUED

    def test_frozen_entries_readable_during_flush(self):
        # Slow writes: the flush is in flight for a long simulated time,
        # during which the frozen entries must stay visible to reads.
        sim, __, db = make_db(write_buffer_bytes=256,
                              flush_workers=2)
        env_latency = 0.05

        def run():
            yield from db.put_proc(b"k1", b"v" * 120)
            yield from db.put_proc(b"k2", b"v" * 120)   # rotates
            assert len(db.immutable_queue) == 1
            value = yield from db.get_proc(b"k1")
            return value

        assert sim.run_until(sim.spawn(run())) == b"v" * 120
        del env_latency

    def test_l0_ranked_by_freeze_seq(self):
        # Two frozen memtables write the same key; whatever order their
        # flushes install, the newer freeze must win reads.
        sim, __, db = make_db(write_buffer_bytes=256, flush_workers=2,
                              l0_compaction_trigger=99)
        db.put(b"dup", b"old-" + b"x" * 240)      # rotates on overflow
        db.put(b"dup", b"new-" + b"y" * 240)
        db.flush()
        db.wait_idle()
        assert db.get(b"dup") == b"new-" + b"y" * 240
        l0 = db.levels[0]
        assert [t.l0_seq for t in l0] == sorted(
            (t.l0_seq for t in l0), reverse=True)

    def test_queue_depth_tracked(self):
        __, __e, db = make_db(write_buffer_bytes=128, flush_workers=3)
        for i in range(12):
            db.put(key(i), b"v" * 100)
        db.flush()
        db.wait_idle()
        assert db.stats.max_flush_queue_depth >= 2
        assert db.stats.max_flush_queue_depth <= 3   # bounded by cap
        assert not db.immutable_queue

    def test_validation(self):
        with pytest.raises(ReproError):
            make_db(flush_workers=0)
        with pytest.raises(ReproError):
            make_db(compaction_workers=0)
        with pytest.raises(ReproError):
            make_db(max_immutable_memtables=-1)


class TestPipelinedFlush:
    def bursty_fill(self, flush_workers):
        # Writes far slower than puts: the burst rotates memtables much
        # faster than one worker can drain them.
        sim, __, db = make_db(write_buffer_bytes=2048,
                              write_latency=5e-4,
                              flush_workers=flush_workers,
                              l0_compaction_trigger=99)
        def run():
            for i in range(64):
                yield from db.put_proc(key(i), b"v" * 200)
        sim.run_until(sim.spawn(run()))
        db.flush()
        db.wait_idle()
        elapsed = sim.now
        assert all(db.get(key(i)) == b"v" * 200 for i in range(0, 64, 7))
        return elapsed

    def test_pipelined_flush_beats_serial(self):
        serial = self.bursty_fill(1)
        pipelined = self.bursty_fill(3)
        assert pipelined < serial


# -- compaction admission control --------------------------------------------------


class TestCompactionExecutor:
    def pick(self, tables, target):
        return CompactionPick(inputs=tables, target_level=target,
                              reason="test")

    def test_shared_input_conflicts(self):
        a = span_ref(1, b"a", b"m")
        b = span_ref(2, b"n", b"z")
        executor = CompactionExecutor(workers=2)
        executor.acquire(self.pick([a], 2))
        assert executor.conflicts(self.pick([a, b], 2))
        assert executor.in_flight == 1

    def test_overlapping_range_on_shared_level_conflicts(self):
        executor = CompactionExecutor(workers=2)
        executor.acquire(self.pick([span_ref(1, b"a", b"m")], 2))
        # Different tables, overlapping key range, same target level.
        assert executor.conflicts(self.pick([span_ref(2, b"k", b"p")], 2))
        # Same range, disjoint level pair: admissible.
        assert not executor.conflicts(
            self.pick([span_ref(3, b"k", b"p")], 4))

    def test_disjoint_ranges_admissible_and_high_water(self):
        executor = CompactionExecutor(workers=2)
        lock_a = executor.acquire(self.pick([span_ref(1, b"a", b"f")], 2))
        lock_b = executor.acquire(self.pick([span_ref(2, b"m", b"z")], 2))
        assert executor.in_flight == 2
        assert executor.saturated
        assert executor.max_in_flight == 2
        executor.release(lock_a)
        executor.release(lock_b)
        assert executor.in_flight == 0
        assert executor.max_in_flight == 2

    def test_acquire_asserts_the_invariant(self):
        executor = CompactionExecutor(workers=2)
        shared = span_ref(1, b"a", b"m")
        executor.acquire(self.pick([shared], 2))
        with pytest.raises(ReproError):
            executor.acquire(self.pick([shared], 2))

    def test_acquire_beyond_workers_raises(self):
        executor = CompactionExecutor(workers=1)
        executor.acquire(self.pick([span_ref(1, b"a", b"b")], 2))
        with pytest.raises(ReproError):
            executor.acquire(self.pick([span_ref(2, b"x", b"y")], 4))

    def test_workers_validated(self):
        with pytest.raises(ReproError):
            CompactionExecutor(workers=0)

    def test_pick_compaction_skips_busy_candidates(self):
        levels = [[] for __ in range(4)]
        levels[0] = [span_ref(i, b"a", b"c") for i in range(1, 5)]
        levels[1] = [span_ref(10, b"a", b"c")]
        executor = CompactionExecutor(workers=2)
        first = pick_compaction(levels, l0_trigger=4, multiplier=4,
                                busy=executor)
        assert first is not None and first.reason == "l0"
        executor.acquire(first)
        # The L0 pick now conflicts with itself; nothing else is
        # admissible, so the second worker finds no work.
        assert pick_compaction(levels, l0_trigger=4, multiplier=4,
                               busy=executor) is None

    def test_pick_compaction_finds_disjoint_deeper_work(self):
        levels = [[] for __ in range(4)]
        levels[0] = [span_ref(i, b"a", b"c") for i in range(1, 5)]
        # L1 over budget (multiplier 2 -> 2 tables) with a victim whose
        # range is disjoint from the in-flight L0->L1 merge.
        levels[1] = [span_ref(10, b"a", b"c"), span_ref(11, b"m", b"n"),
                     span_ref(12, b"x", b"z")]
        executor = CompactionExecutor(workers=2)
        first = pick_compaction(levels, l0_trigger=4, multiplier=2,
                                busy=executor)
        executor.acquire(first)
        second = pick_compaction(levels, l0_trigger=4, multiplier=2,
                                 busy=executor)
        assert second is not None
        assert second.reason == "l1-size"
        assert not executor.conflicts(second)
        assert second.inputs[0].meta.first_key >= b"m"

    def test_engine_run_with_concurrent_compactions(self):
        __, __e, db = make_db(write_buffer_bytes=1024,
                              sstable_data_bytes=1024,
                              l0_compaction_trigger=2,
                              level_size_multiplier=2,
                              flush_workers=2, compaction_workers=2)
        for round_ in range(6):
            for i in range(40):
                db.put(key(i), bytes([65 + round_]) * 64)
            db.flush()
        db.wait_idle()
        # acquire() raised nowhere, and all newest values survived.
        for i in range(40):
            assert db.get(key(i)) == bytes([65 + 5]) * 64
        assert db.stats.compactions > 0
        assert db.executor.in_flight == 0
        assert db.stats.compaction_timeline   # start/end samples taken


# -- the bottom level is never a source --------------------------------------------


class TestBottomLevel:
    def test_pick_never_sources_bottom_level(self):
        levels = [[] for __ in range(3)]
        # Bottom level (L2) grossly over its budget of multiplier**2 = 4.
        levels[2] = [span_ref(i, bytes([97 + i]), bytes([98 + i]))
                     for i in range(10)]
        assert pick_compaction(levels, l0_trigger=4, multiplier=2) is None

    def test_bottom_oversize_counted(self):
        sim, __, db = make_db(obs=True, write_buffer_bytes=512,
                              sstable_data_bytes=512, max_levels=2,
                              l0_compaction_trigger=2,
                              level_size_multiplier=2)
        # max_levels=2: L1 is the bottom, budget 2 tables.  Keep flushing
        # distinct ranges so compactions push more than 2 tables down.
        for round_ in range(8):
            for i in range(16):
                db.put(key(round_ * 16 + i), b"v" * 48)
            db.flush()
        db.wait_idle()
        assert len(db.levels[1]) > 2
        assert db.stats.bottom_level_oversize >= 1
        metrics = sim.obs.metrics
        assert metrics.counter(
            "lsm.compaction.bottom_level_oversize").value \
            == db.stats.bottom_level_oversize
        assert metrics.gauge("lsm.level.1.tables").value \
            == len(db.levels[1])
        assert metrics.gauge("lsm.level.0.tables").value \
            == len(db.levels[0])


# -- the backpressure state machine ------------------------------------------------


class TestBackpressureMachine:
    def machine(self, slowdown=6, stop=10):
        config = DBConfig(l0_slowdown_trigger=slowdown,
                          l0_stop_trigger=stop)
        return BackpressureState(config)

    def test_classify(self):
        bp = self.machine(slowdown=2, stop=4)
        assert bp.classify(False, False, 0) == OK
        assert bp.classify(True, False, 0) == OK     # queue full alone
        assert bp.classify(False, True, 0) == OK     # memtable full alone
        assert bp.classify(True, True, 0) == STOP
        assert bp.classify(False, False, 2) == SLOWDOWN
        assert bp.classify(False, False, 4) == STOP
        assert bp.classify(True, True, 2) == STOP    # stop beats slowdown

    def test_residency_and_transitions(self):
        bp = self.machine()
        assert bp.observe(OK, 0.0) == OK             # no-op, same state
        bp.observe(STOP, 1.0)
        bp.observe(OK, 3.5)
        bp.observe(SLOWDOWN, 4.0)
        residency = bp.finish(6.0)
        assert residency == {OK: 1.0 + 0.5, STOP: 2.5, SLOWDOWN: 2.0}
        assert bp.transitions == [(1.0, OK, STOP), (3.5, STOP, OK),
                                  (4.0, OK, SLOWDOWN)]

    def test_residency_summary_is_non_mutating(self):
        bp = self.machine()
        bp.observe(STOP, 1.0)
        first = bp.residency_summary(3.0)
        second = bp.residency_summary(3.0)
        assert first == second
        assert first[STOP] == 2.0
        assert bp.residency[STOP] == 0.0   # still unclosed

    def test_stop_stall_accounting_matches_sim_delta(self):
        sim, __, db = make_db(write_buffer_bytes=200, put_cpu=0.0,
                              l0_slowdown_trigger=99, l0_stop_trigger=99,
                              l0_compaction_trigger=99)

        def run():
            # Two puts fill and rotate; two more refill the memtable
            # while the queue (cap 1) is busy flushing.
            for i in range(4):
                yield from db.put_proc(key(i), b"v" * 100)
            assert len(db.immutable_queue) == 1
            assert db.memtable.approximate_bytes >= 200
            before = sim.now
            yield from db.put_proc(key(4), b"v" * 100)   # STOP until flush
            return sim.now - before

        stalled_for = sim.run_until(sim.spawn(run()))
        assert stalled_for > 0
        assert db.stats.stall_seconds == pytest.approx(stalled_for)
        assert (STOP in [frm for __, frm, __to in db.backpressure.transitions]
                or STOP in [to for __, __frm, to
                            in db.backpressure.transitions])
        assert db.backpressure.residency_summary(sim.now)[STOP] \
            == pytest.approx(stalled_for)

    def test_slowdown_paces_puts(self):
        sim, __, db = make_db(write_buffer_bytes=64 * 1024, put_cpu=0.0,
                              slowdown_delay=5e-3,
                              l0_slowdown_trigger=1, l0_stop_trigger=99,
                              l0_compaction_trigger=99)
        db.put(b"seed", b"v")
        db.flush()
        db.wait_idle()
        assert len(db.levels[0]) >= 1    # at/above the slowdown trigger

        def run():
            before = sim.now
            yield from db.put_proc(b"paced", b"v")
            return sim.now - before

        elapsed = sim.run_until(sim.spawn(run()))
        assert elapsed == pytest.approx(5e-3)
        assert db.stats.slowdown_puts == 1
        assert db.backpressure.state == SLOWDOWN

    def test_transition_obs_instants_and_gauge(self):
        sim, __, db = make_db(obs=True, write_buffer_bytes=200,
                              put_cpu=0.0, l0_slowdown_trigger=99,
                              l0_stop_trigger=99, l0_compaction_trigger=99)

        def run():
            for i in range(5):
                yield from db.put_proc(key(i), b"v" * 100)

        sim.run_until(sim.spawn(run()))
        db.flush()
        db.wait_idle()
        marks = [instant for instant in sim.obs.tracer.instants
                 if instant.layer == "lsm.backpressure"
                 and instant.name == "transition"]
        assert marks, "transitions must emit obs instants"
        assert all({"frm", "to"} <= set(mark.attrs) for mark in marks)
        # The instant stream mirrors the machine's own log.
        assert [(m.attrs["frm"], m.attrs["to"]) for m in marks] \
            == [(frm, to) for __, frm, to in db.backpressure.transitions]
        assert sim.obs.metrics.gauge("lsm.backpressure.state").value \
            == {OK: 0, SLOWDOWN: 1, STOP: 2}[db.backpressure.state]

    def test_queue_depth_transitions_under_multi_worker_flush(self):
        sim, __, db = make_db(write_buffer_bytes=200, put_cpu=0.0,
                              flush_workers=2,
                              l0_slowdown_trigger=99, l0_stop_trigger=99,
                              l0_compaction_trigger=99)

        def run():
            # cap = 2: two rotations absorb without a stall; the third
            # full memtable hits STOP only once both slots are taken.
            for i in range(4):
                yield from db.put_proc(key(i), b"v" * 100)
            depth_after_two = db.stats.max_flush_queue_depth
            stalls_before = db.stats.stall_seconds
            for i in range(4, 8):
                yield from db.put_proc(key(i), b"v" * 100)
            return depth_after_two, stalls_before

        depth_after_two, stalls_before = sim.run_until(sim.spawn(run()))
        db.flush()
        db.wait_idle()
        assert depth_after_two <= 2
        assert db.stats.max_flush_queue_depth == 2
        assert stalls_before == 0.0   # first two rotations: no stall
        stop_transitions = [(frm, to) for __, frm, to
                            in db.backpressure.transitions if to == STOP]
        assert stop_transitions, \
            "a full queue plus a full memtable must reach STOP"


# -- the write dispatcher ----------------------------------------------------------


class FakeMedia:
    """Just enough media for a WriteDispatcher: a device whose submit
    costs a fixed latency."""

    def __init__(self, sim, latency):
        self.sim = sim
        self.latency = latency
        self.device = self
        self.submitted = 0

    def submit(self, command):
        self.submitted += 1
        yield self.sim.timeout(self.latency)
        return type("Completion", (), {"ok": True, "data": None})()


class TestWriteDispatcher:
    def drain(self, workers, dispatch_cpu, jobs=4):
        sim = Simulator()
        media = FakeMedia(sim, latency=1e-6)
        dispatcher = WriteDispatcher(sim, media, name="test",
                                     workers=workers,
                                     dispatch_cpu=dispatch_cpu)
        done = [dispatcher.submit([], [], []) for __ in range(jobs)]
        sim.run_until(sim.all_of(done))
        assert dispatcher.jobs_dispatched == jobs
        return sim.now

    def test_single_worker_serializes_dispatch_cpu(self):
        elapsed = self.drain(workers=1, dispatch_cpu=1e-3)
        assert elapsed == pytest.approx(4e-3, rel=0.01)

    def test_workers_overlap_dispatch_cpu(self):
        elapsed = self.drain(workers=4, dispatch_cpu=1e-3)
        assert elapsed == pytest.approx(1e-3, rel=0.01)

    def test_zero_cpu_default_costs_nothing(self):
        elapsed = self.drain(workers=1, dispatch_cpu=0.0)
        assert elapsed == pytest.approx(1e-6, rel=0.01)

    def test_validation(self):
        sim = Simulator()
        media = FakeMedia(sim, latency=0)
        with pytest.raises(ReproError):
            WriteDispatcher(sim, media, workers=0)
        with pytest.raises(ReproError):
            WriteDispatcher(sim, media, dispatch_cpu=-1.0)


# -- spec plumbing -----------------------------------------------------------------


class TestSpecValidation:
    def test_worker_fields_validated(self):
        from repro.stack import StackSpec
        with pytest.raises(ReproError):
            StackSpec(lsm_flush_workers=0).validate()
        with pytest.raises(ReproError):
            StackSpec(ftl="oxblock", host="none",
                      lsm_compaction_workers=2).validate()
        with pytest.raises(ReproError):
            StackSpec(ftl="oxblock", host="none",
                      lightlsm_dispatch_workers=2).validate()
        StackSpec(lsm_flush_workers=2, lsm_compaction_workers=2,
                  lightlsm_dispatch_workers=2).validate()

    def test_build_wires_workers(self):
        from repro.stack import StackSpec, build_stack
        from repro.units import KIB
        stack = build_stack(StackSpec(
            ftl="lightlsm",
            geometry={"num_groups": 2, "pus_per_group": 2,
                      "chunks_per_pu": 8, "pages_per_block": 6},
            db={"block_size": 96 * KIB},
            lsm_flush_workers=2, lsm_compaction_workers=3,
            lightlsm_dispatch_workers=2))
        assert stack.db.config.flush_workers == 2
        assert stack.db.config.compaction_workers == 3
        assert stack.db.executor.workers == 3
        assert stack.env.dispatcher.workers == 2
