"""Edge-case tests for the device model: FUA semantics, copies across
groups, cache back-pressure, geometry extremes."""

import pytest

from repro.errors import SimulationError
from repro.nand import FlashGeometry, CellType
from repro.ocssd import (
    ChunkState,
    CommandStatus,
    DeviceGeometry,
    OpenChannelSSD,
    Ppa,
    VectorWrite,
)
from repro.ocssd.cache import WriteBackCache
from repro.sim import Simulator


def tiny(groups=2, pus=2, chunks=4, pages=6, **kwargs):
    geometry = DeviceGeometry(
        num_groups=groups, pus_per_group=pus,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=pages))
    return OpenChannelSSD(geometry=geometry, **kwargs)


def unit(device, **kw):
    ws = device.geometry.ws_min
    defaults = dict(group=0, pu=0, chunk=0, start=0)
    defaults.update(kw)
    g, p, c, s = (defaults["group"], defaults["pu"], defaults["chunk"],
                  defaults["start"])
    return [Ppa(g, p, c, s + i) for i in range(ws)]


class TestFua:
    def test_fua_write_is_durable_without_flush(self):
        device = tiny()
        ppas = unit(device)
        device.write(ppas, [b"f" * 64] * len(ppas), fua=True)
        device.crash_volatile()
        assert device.chunk_info(ppas[0]).write_pointer == len(ppas)
        assert device.read(ppas[:1]).data[0] == b"f" * 64

    def test_fua_after_cached_writes_same_chunk_keeps_order(self):
        device = tiny()
        ws = device.geometry.ws_min
        first = unit(device)
        second = unit(device, start=ws)
        device.write(first, [b"1" * 16] * ws)            # cached
        completion = device.write(second, [b"2" * 16] * ws, fua=True)
        assert completion.ok
        # FUA completion implies everything below it is also on media.
        assert device.chunk_info(first[0]).ppa is not None
        device.crash_volatile()
        assert device.chunk_info(first[0]).write_pointer == 2 * ws

    def test_fua_slower_than_cached(self):
        device = tiny()
        cached = device.write(unit(device, chunk=0),
                              [b"c" * 16] * device.geometry.ws_min)
        fua = device.write(unit(device, chunk=1),
                           [b"d" * 16] * device.geometry.ws_min, fua=True)
        assert fua.latency > cached.latency


class TestCopySemantics:
    def test_copy_across_groups(self):
        device = tiny()
        src = unit(device, group=0)
        dst = unit(device, group=1)
        device.write(src, [bytes([i]) for i in range(len(src))])
        completion = device.copy(src, dst)
        assert completion.ok
        assert device.read(dst).data == [bytes([i])
                                         for i in range(len(src))]

    def test_copy_of_unwritten_source_is_invalid(self):
        device = tiny()
        completion = device.copy(unit(device, chunk=0),
                                 unit(device, chunk=1))
        assert completion.status is CommandStatus.INVALID

    def test_copy_mismatched_lengths_rejected(self):
        device = tiny()
        with pytest.raises(ValueError):
            device.copy([Ppa(0, 0, 0, 0)], [])


class TestCacheBackPressure:
    def test_writes_block_when_cache_full(self):
        """A tiny cache forces admission to wait for programs — sustained
        writes run at NAND speed, not DRAM speed."""
        ws_min = 24
        small = tiny(cache_sectors=ws_min)       # one unit of cache
        large = tiny(cache_sectors=ws_min * 64)
        chunk_sectors = small.geometry.sectors_per_chunk

        def fill(device):
            started = device.sim.now
            for chunk in range(2):
                ppas = [Ppa(0, 0, chunk, s) for s in range(chunk_sectors)]
                device.write(ppas, [b"x" * 16] * chunk_sectors)
            return device.sim.now - started

        assert fill(small) > fill(large)

    def test_cache_reserve_release_roundtrip(self):
        sim = Simulator()
        cache = WriteBackCache(sim, capacity_sectors=10)
        grant = cache.reserve(4)
        assert grant.triggered
        assert cache.free_sectors == 6
        cache.release(4)
        assert cache.free_sectors == 10

    def test_cache_fifo_under_contention(self):
        sim = Simulator()
        cache = WriteBackCache(sim, capacity_sectors=10)
        cache.reserve(10)
        order = []

        def requester(tag, amount):
            grant = cache.reserve(amount)
            yield grant
            order.append(tag)

        sim.spawn(requester("big", 8))
        sim.spawn(requester("small", 1))
        cache.release(10)
        sim.run()
        # FIFO: the large request is served first even though the small
        # one would fit earlier (no starvation of large reservations).
        assert order == ["big", "small"]

    def test_oversized_reservation_capped_to_capacity(self):
        sim = Simulator()
        cache = WriteBackCache(sim, capacity_sectors=10)
        grant = cache.reserve(50)
        assert grant.triggered
        assert grant.value == 10

    def test_over_release_rejected(self):
        sim = Simulator()
        cache = WriteBackCache(sim, capacity_sectors=10)
        with pytest.raises(SimulationError):
            cache.release(11)


class TestGeometryExtremes:
    def test_single_everything(self):
        device = tiny(groups=1, pus=1, chunks=1)
        ppas = unit(device)
        assert device.write(ppas, [b"1"] * len(ppas)).ok
        assert device.read(ppas).ok

    def test_qlc_four_planes(self):
        geometry = DeviceGeometry(
            num_groups=1, pus_per_group=1,
            flash=FlashGeometry(cell=CellType.QLC, planes=4,
                                blocks_per_plane=2, pages_per_block=4))
        device = OpenChannelSSD(geometry=geometry)
        assert geometry.ws_min == 64   # the paper's 256 KB / 4 KB sectors
        ppas = [Ppa(0, 0, 0, s) for s in range(64)]
        assert device.write(ppas, [b"q"] * 64).ok

    def test_slc_single_plane(self):
        geometry = DeviceGeometry(
            num_groups=1, pus_per_group=1,
            flash=FlashGeometry(cell=CellType.SLC, planes=1,
                                blocks_per_plane=2, pages_per_block=4))
        device = OpenChannelSSD(geometry=geometry)
        assert geometry.ws_min == 4    # one flash page
        ppas = [Ppa(0, 0, 0, s) for s in range(4)]
        assert device.write(ppas, [b"s"] * 4).ok
