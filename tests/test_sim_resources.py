"""Tests for Resource and Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import Resource, Simulator, Store


def hold(sim, resource, duration, log, tag):
    grant = resource.request()
    yield grant
    log.append(("acquired", tag, sim.now))
    try:
        yield sim.timeout(duration)
    finally:
        resource.release()


def test_resource_serializes_holders():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []
    sim.spawn(hold(sim, resource, 2.0, log, "a"))
    sim.spawn(hold(sim, resource, 2.0, log, "b"))
    sim.run()
    assert log == [("acquired", "a", 0.0), ("acquired", "b", 2.0)]


def test_resource_capacity_two_runs_in_parallel():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    log = []
    for tag in ("a", "b", "c"):
        sim.spawn(hold(sim, resource, 2.0, log, tag))
    sim.run()
    times = {tag: t for __, tag, t in log}
    assert times["a"] == 0.0
    assert times["b"] == 0.0
    assert times["c"] == 2.0


def test_resource_grants_fifo():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []

    def staggered(sim, delay, tag):
        yield sim.timeout(delay)
        yield from hold(sim, resource, 5.0, log, tag)

    for index, tag in enumerate("abcd"):
        sim.spawn(staggered(sim, 0.1 * index, tag))
    sim.run()
    assert [tag for __, tag, _t in log] == ["a", "b", "c", "d"]


def test_release_without_request_rejected():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        resource.release()


def test_zero_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_utilization():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []

    def busy_then_idle(sim):
        yield from hold(sim, resource, 3.0, log, "x")
        yield sim.timeout(1.0)

    sim.spawn(busy_then_idle(sim))
    sim.run()
    assert sim.now == 4.0
    assert resource.busy_time() == pytest.approx(3.0)
    assert resource.utilization() == pytest.approx(0.75)


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("item")

    def getter(sim):
        item = yield store.get()
        return item

    assert sim.run_until(sim.spawn(getter(sim))) == "item"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def getter(sim):
        item = yield store.get()
        return (item, sim.now)

    def putter(sim):
        yield sim.timeout(4.0)
        store.put("late")

    proc = sim.spawn(getter(sim))
    sim.spawn(putter(sim))
    assert sim.run_until(proc) == ("late", 4.0)


def test_store_fifo_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    received = []

    def getter(sim, tag):
        item = yield store.get()
        received.append((tag, item))

    sim.spawn(getter(sim, "g1"))
    sim.spawn(getter(sim, "g2"))

    def putter(sim):
        yield sim.timeout(1.0)
        store.put("first")
        store.put("second")

    sim.spawn(putter(sim))
    sim.run()
    assert received == [("g1", "first"), ("g2", "second")]


def test_store_len_counts_buffered_items():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2
