"""Smoke tests: every example script runs to completion and prints its
headline output.  (The slow Figure-3 miniature is exercised at a reduced
scale by the benchmarks instead.)"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True, text=True, timeout=420)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "recovered in" in out
    assert "hello open-channel world" in out


def test_kv_store_lightlsm():
    out = run_example("kv_store_lightlsm.py")
    assert "horizontal placement" in out
    assert "vertical placement" in out
    assert "reopened without MANIFEST" in out


def test_log_structured_eleos():
    out = run_example("log_structured_eleos.py")
    assert "cleaner freed segment" in out
    assert "recovered after crash" in out


def test_zns_port():
    out = run_example("zns_port.py")
    assert "zone states" in out
    assert "reclaimed zone" in out


def test_landscape_tour():
    out = run_example("landscape_tour.py")
    assert "REJECTED" in out
    assert "COMPLIES" in out
    assert "OX-Block" in out
