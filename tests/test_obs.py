"""Tests for repro.obs: tracer, metrics, exporters, attribution, wiring.

The unit tests exercise the instruments against a fake clock; the
end-to-end tests drive the real stack — attach an :class:`Obs` hub to an
Open-Channel SSD, run OX-Block / LSM workloads — and then check the
subsystem's three invariants: spans nest, per-layer exclusive times sum
to the end-to-end root durations, and both export formats round-trip.
"""

import json

import pytest

from repro.errors import ReproError
from repro.lsm import DB, DBConfig, HorizontalPlacement, LightLSMEnv
from repro.nand import FlashGeometry
from repro.obs import (
    MetricsRegistry,
    Obs,
    Tracer,
    attribute,
    format_table,
    percentile_of,
    read_jsonl,
    spans_from_chrome,
    validate_nesting,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.report import main as report_main
from repro.ocssd import DeviceGeometry, OpenChannelSSD
from repro.ocssd.address import Ppa
from repro.ox import BlockConfig, MediaManager, OXBlock
from repro.units import KIB

SS = 4096


class FakeClock:
    """Stands in for the simulator: the tracer only reads ``.now``."""

    def __init__(self, now=0.0):
        self.now = now


def make_tracer(**kwargs):
    tracer = Tracer(**kwargs)
    tracer.sim = FakeClock()
    return tracer


def small_geometry(groups=2, pus=2, chunks=16, pages=6):
    return DeviceGeometry(
        num_groups=groups, pus_per_group=pus,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=pages))


def traced_stack(gc_enabled=True, **geo):
    """Attach first, build the stack second (layers inherit from sim.obs)."""
    device = OpenChannelSSD(geometry=small_geometry(**geo))
    obs = Obs().attach(device)
    ftl = OXBlock.format(MediaManager(device), BlockConfig(
        wal_chunk_count=2, ckpt_chunks_per_slot=1, gc_enabled=gc_enabled))
    return device, obs, ftl


def run_block_workload(device, ftl, ops=10):
    unit = device.geometry.ws_min
    payload = bytes(unit * SS)
    for op in range(ops):
        ftl.write(op * unit, payload)
    for op in range(0, ops, 3):
        ftl.read(op * unit, 1)
    ftl.flush()
    device.sim.run()


class TestMetrics:
    def test_counter_accumulates_and_is_memoized(self):
        registry = MetricsRegistry()
        registry.counter("ftl.gc.deferrals").increment()
        registry.counter("ftl.gc.deferrals").increment(5)
        counter = registry.counter("ftl.gc.deferrals")
        assert counter.value == 6
        assert counter is registry.counter("ftl.gc.deferrals")
        assert counter.summary() == {"type": "counter", "value": 6}

    def test_gauge_sets_not_accumulates(self):
        registry = MetricsRegistry()
        registry.gauge("peak_bytes").set(10)
        registry.gauge("peak_bytes").set(7)
        assert registry.gauge("peak_bytes").value == 7

    def test_histogram_nearest_rank_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        histogram.extend(float(v) for v in range(100, 0, -1))
        assert histogram.count == 100
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(95) == 95.0
        assert histogram.percentile(99) == 99.0
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0
        assert histogram.maximum() == 100.0
        assert histogram.mean() == pytest.approx(50.5)

    def test_empty_histogram_reports_zeroes(self):
        histogram = MetricsRegistry().histogram("idle")
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["p99"] == 0.0
        assert summary["max"] == 0.0

    def test_percentile_range_checked_before_emptiness(self):
        with pytest.raises(ValueError):
            percentile_of([], 101)
        with pytest.raises(ValueError):
            percentile_of([1.0], -0.5)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_flat_fans_out_histograms_only(self):
        registry = MetricsRegistry()
        registry.counter("ops").increment(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat").extend([1.0, 3.0])
        flat = registry.flat()
        assert flat["ops"] == 3
        assert flat["depth"] == 2
        assert flat["lat.count"] == 2
        assert flat["lat.mean"] == pytest.approx(2.0)
        assert flat["lat.max"] == 3.0
        assert "lat" not in flat

    def test_namespace_selects_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("ftl.gc.deferrals").increment()
        registry.counter("ftl.gcx").increment()   # not under ftl.gc.
        registry.histogram("ftl.gc.collect_s").record(0.5)
        names = set(registry.namespace("ftl.gc"))
        assert names == {"ftl.gc.deferrals", "ftl.gc.collect_s"}

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert "a" in registry and "c" not in registry
        assert registry.names() == ["a", "b"]
        assert len(registry) == 2


class TestTracer:
    def test_begin_end_records_interval(self):
        tracer = make_tracer()
        tracer.sim.now = 1.0
        span = tracer.begin("ftl", "write")
        tracer.sim.now = 3.5
        tracer.end(span, sectors=24)
        assert span.start == 1.0 and span.end == 3.5
        assert span.duration == pytest.approx(2.5)
        assert span.attrs == {"sectors": 24}
        assert tracer.finished_spans() == [span]

    def test_parent_threading(self):
        tracer = make_tracer()
        parent = tracer.begin("ftl", "write")
        child = tracer.begin("ocssd", "write", parent)
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None

    def test_end_none_is_a_noop(self):
        make_tracer().end(None, anything=1)

    def test_end_merges_attrs(self):
        tracer = make_tracer()
        span = tracer.begin("ftl", "write")
        tracer.end(span, a=1)
        tracer.end(span, b=2)
        assert span.attrs == {"a": 1, "b": 2}

    def test_complete_records_known_interval(self):
        tracer = make_tracer()
        span = tracer.complete("nand", "read", 2.0, 2.25, sectors=4)
        assert span.start == 2.0 and span.end == 2.25
        assert span.attrs == {"sectors": 4}

    def test_event_cap_degrades_to_dropped(self):
        tracer = make_tracer(max_events=2)
        assert tracer.begin("a", "x") is not None
        assert tracer.begin("a", "y") is not None
        assert tracer.begin("a", "z") is None
        assert tracer.dropped == 1
        tracer.end(None)   # call sites stay unconditional
        # Instants have their own budget against the same cap.
        tracer.instant("a", "i1")
        tracer.instant("a", "i2")
        tracer.instant("a", "i3")
        assert tracer.dropped == 2
        assert len(tracer.instants) == 2


class TestValidateNesting:
    def test_well_nested_forest_is_clean(self):
        tracer = make_tracer()
        root = tracer.begin("ftl", "write")
        tracer.sim.now = 1.0
        child = tracer.begin("ocssd", "write", root)
        tracer.sim.now = 2.0
        tracer.end(child)
        tracer.sim.now = 3.0
        tracer.end(root)
        assert validate_nesting(tracer.spans) == []

    def test_child_escaping_parent_flagged(self):
        tracer = make_tracer()
        root = tracer.begin("ftl", "write")
        child = tracer.begin("ocssd", "write", root)
        tracer.sim.now = 2.0
        tracer.end(root)
        tracer.sim.now = 5.0
        tracer.end(child)   # outlives its parent
        violations = validate_nesting(tracer.spans)
        assert len(violations) == 1
        assert "escapes parent" in violations[0]

    def test_unknown_parent_flagged(self):
        tracer = make_tracer()
        span = tracer.begin("ftl", "write")
        span.parent_id = 999
        tracer.end(span)
        assert any("unknown parent" in v
                   for v in validate_nesting(tracer.spans))

    def test_unfinished_spans_skipped(self):
        tracer = make_tracer()
        root = tracer.begin("ftl", "write")
        tracer.begin("ocssd", "write", root)   # never ended
        tracer.end(root)
        assert validate_nesting(tracer.spans) == []


class TestAttribution:
    def build_forest(self):
        """root ftl [0,10] > ocssd [2,8] > nand [3,5]."""
        tracer = make_tracer()
        root = tracer.begin("ftl", "write")
        tracer.sim.now = 2.0
        mid = tracer.begin("ocssd", "write", root)
        tracer.sim.now = 3.0
        leaf = tracer.begin("nand", "program", mid)
        tracer.sim.now = 5.0
        tracer.end(leaf)
        tracer.sim.now = 8.0
        tracer.end(mid)
        tracer.sim.now = 10.0
        tracer.end(root)
        return tracer

    def test_exclusive_times_sum_to_roots(self):
        result = attribute(self.build_forest().spans)
        assert result.root_spans == 1
        assert result.root_total == pytest.approx(10.0)
        assert result.layers["ftl"].exclusive == pytest.approx(4.0)
        assert result.layers["ocssd"].exclusive == pytest.approx(4.0)
        assert result.layers["nand"].exclusive == pytest.approx(2.0)
        assert result.consistent

    def test_detached_roots_both_count(self):
        tracer = make_tracer()
        first = tracer.begin("ftl", "write")
        tracer.sim.now = 1.0
        tracer.end(first)
        second = tracer.begin("ftl.gc", "collect")   # background root
        tracer.sim.now = 4.0
        tracer.end(second)
        result = attribute(tracer.spans)
        assert result.root_spans == 2
        assert result.root_total == pytest.approx(4.0)
        assert result.consistent

    def test_unfinished_spans_excluded(self):
        tracer = self.build_forest()
        tracer.begin("ftl", "in-flight")   # never ends
        result = attribute(tracer.spans)
        assert result.unfinished == 1
        assert result.consistent

    def test_children_of_unfinished_roots_dropped(self):
        tracer = make_tracer()
        root = tracer.begin("ftl", "write")        # never ends
        child = tracer.begin("ocssd", "write", root)
        tracer.sim.now = 2.0
        tracer.end(child)
        result = attribute(tracer.spans)
        assert result.root_spans == 0
        assert "ocssd" not in result.layers

    def test_format_table_shows_identity(self):
        lines = format_table(attribute(self.build_forest().spans))
        text = "\n".join(lines)
        assert "end-to-end" in text
        assert "100.0%" in text
        assert "DRIFT" not in text


class TestWiring:
    def test_attach_twice_raises(self):
        device = OpenChannelSSD(geometry=small_geometry())
        obs = Obs().attach(device)
        with pytest.raises(ReproError):
            obs.attach(device)

    def test_attach_wires_every_layer(self):
        device, obs, ftl = traced_stack()
        assert device.obs is obs
        assert device.controller.obs is obs
        assert device.sim.obs is obs
        assert ftl.obs is obs
        assert ftl.wal.obs is obs
        assert all(chip.obs is obs for chip in device.chips.values())

    def test_detach_disables_recording(self):
        device, obs, ftl = traced_stack()
        run_block_workload(device, ftl, ops=2)
        obs.detach()
        assert device.obs is None and device.sim.obs is None
        recorded = len(obs.tracer.spans)
        unit = device.geometry.ws_min
        # Layers built after attach hold their own reference by design;
        # a full disable nulls those too.
        ftl.obs = ftl.wal.obs = ftl.gc.obs = None
        ftl.write(0, bytes(unit * SS))
        assert len(obs.tracer.spans) == recorded

    def test_unattached_stack_records_nothing(self):
        """Zero-cost path: without a hub every obs attribute stays None."""
        device = OpenChannelSSD(geometry=small_geometry())
        ftl = OXBlock.format(MediaManager(device), BlockConfig(
            wal_chunk_count=2, ckpt_chunks_per_slot=1))
        assert device.obs is None
        assert device.controller.obs is None
        assert device.sim.obs is None
        assert ftl.obs is None and ftl.wal.obs is None
        unit = device.geometry.ws_min
        ftl.write(0, bytes(unit * SS))
        assert ftl.read(0, 1) == b"\x00" * SS or ftl.read(0, 1)


class TestEndToEndBlock:
    def test_spans_nest_and_attribution_is_consistent(self):
        device, obs, ftl = traced_stack()
        run_block_workload(device, ftl)
        assert len(obs.tracer.spans) > 0
        assert validate_nesting(obs.tracer.spans) == []
        result = attribute(obs.tracer.spans)
        assert result.consistent
        assert result.root_total > 0
        assert {"ftl", "ocssd", "nand"} <= set(result.layers)

    def test_metric_namespaces_populated(self):
        device, obs, ftl = traced_stack()
        run_block_workload(device, ftl, ops=8)
        metrics = obs.metrics
        assert metrics.counter("nand.program.count").value > 0
        assert metrics.counter("ocssd.write.sectors").value \
            >= 8 * device.geometry.ws_min
        assert metrics.histogram("ftl.write.latency_s").count == 8
        assert metrics.histogram("ftl.wal.flush_s").count > 0
        assert metrics.counter("sim.processes_spawned").value > 0
        # The per-layer namespace view covers the NAND media instruments.
        assert {"nand.program.count", "nand.program.media_s"} \
            <= set(metrics.namespace("nand"))

    def test_chrome_trace_round_trips(self, tmp_path):
        device, obs, ftl = traced_stack()
        run_block_workload(device, ftl)
        path = str(tmp_path / "trace.json")
        write_chrome_trace(obs.tracer, path)
        with open(path) as handle:
            document = json.loads(handle.read())
        events = document["traceEvents"]
        complete = [e for e in events if e.get("ph") == "X"]
        assert len(complete) == len(obs.tracer.finished_spans())
        assert all(e["dur"] >= 0 for e in complete)
        assert document["otherData"]["dropped"] == 0
        # Layer lanes arrive as thread-name metadata.
        lanes = {e["args"]["name"] for e in events if e.get("ph") == "M"
                 and e["name"] == "thread_name"}
        assert {"ftl", "ocssd", "nand"} <= lanes
        # Rebuilt spans keep the tree: nesting and the sum identity hold.
        rebuilt = spans_from_chrome(path)
        assert validate_nesting(rebuilt) == []
        assert attribute(rebuilt).consistent

    def test_jsonl_round_trips_and_report_prints(self, tmp_path, capsys):
        device, obs, ftl = traced_stack()
        run_block_workload(device, ftl)
        path = str(tmp_path / "run.jsonl")
        write_jsonl(obs, path)
        spans, instants, metrics = read_jsonl(path)
        assert len(spans) == len(obs.tracer.spans)
        assert len(instants) == len(obs.tracer.instants)
        names = {row["name"] for row in metrics}
        assert "nand.program.count" in names
        assert attribute(spans).consistent
        assert report_main([path]) == 0
        out = capsys.readouterr().out
        assert "end-to-end" in out
        assert "nand" in out

    def test_report_reads_chrome_format(self, tmp_path, capsys):
        device, obs, ftl = traced_stack()
        run_block_workload(device, ftl, ops=4)
        path = str(tmp_path / "trace.json")
        write_chrome_trace(obs.tracer, path)
        assert report_main([path, "--chrome"]) == 0
        assert "end-to-end" in capsys.readouterr().out

    def test_report_fails_on_empty_trace(self, tmp_path, capsys):
        path = str(tmp_path / "empty.jsonl")
        with open(path, "w"):
            pass
        assert report_main([path]) == 1

    def test_absorbed_chunk_retirement_surfaces(self):
        """Satellite: background error absorption shows up as obs events."""
        device, obs, ftl = traced_stack(gc_enabled=False)
        unit = device.geometry.ws_min
        ftl.write(0, b"a" * SS * unit)
        linear = ftl.page_map.lookup(0)
        key = ftl.geometry.delinearize(linear).chunk_key()
        device._notify(Ppa(*key, 0), "write-failed", "injected")
        ftl.write(unit * 50, b"b" * SS * unit)   # absorbs the notification
        assert obs.metrics.counter("ftl.errors").value == 1
        assert obs.metrics.counter("ftl.errors.chunk-retired").value == 1
        marks = [i for i in obs.tracer.instants
                 if i.name == "error:chunk-retired"]
        assert len(marks) == 1
        assert "write-failed" in marks[0].attrs["detail"]


class TestEndToEndLsm:
    def make_db(self):
        geometry = DeviceGeometry(
            num_groups=4, pus_per_group=2,
            flash=FlashGeometry(blocks_per_plane=40, pages_per_block=6))
        device = OpenChannelSSD(geometry=geometry)
        obs = Obs().attach(device)
        media = MediaManager(device)
        env = LightLSMEnv(media, HorizontalPlacement())
        db = DB(env, DBConfig(block_size=96 * KIB,
                              write_buffer_bytes=64 * KIB),
                device.sim)
        return device, obs, db

    def test_db_bench_style_run_is_traced(self):
        device, obs, db = self.make_db()
        value = b"v" * 512
        for i in range(160):
            db.put(f"{i:016d}".encode(), value)
        db.flush()
        for i in range(0, 160, 16):
            assert db.get(f"{i:016d}".encode()) == value
        device.sim.run()
        metrics = obs.metrics
        assert metrics.counter("lsm.puts").value == 160
        assert metrics.histogram("lsm.put.latency_s").count == 160
        assert metrics.counter("lsm.flush.count").value >= 1
        assert metrics.histogram("lsm.flush.duration_s").count >= 1
        assert validate_nesting(obs.tracer.spans) == []
        result = attribute(obs.tracer.spans)
        assert result.consistent
        assert "lsm" in result.layers
        assert "ocssd" in result.layers
