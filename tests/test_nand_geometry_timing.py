"""Tests for chip geometry and the NAND timing model."""

import pytest

from repro.errors import GeometryError
from repro.nand import CellType, FlashGeometry, NandTiming, timing_for
from repro.units import KIB, MIB


class TestFlashGeometry:
    def test_default_is_dual_plane_tlc_96k_write_unit(self):
        geometry = FlashGeometry()
        assert geometry.cell is CellType.TLC
        assert geometry.planes == 2
        assert geometry.write_unit_sectors == 24
        assert geometry.write_unit_bytes == 96 * KIB

    def test_paper_figure4_chunk_size(self):
        """Figure 4: 6144 sectors per chunk, 4 KB sectors -> 24 MB chunks."""
        geometry = FlashGeometry(pages_per_block=768)
        assert geometry.sectors_per_chunk == 6144
        assert geometry.chunk_size == 24 * MIB

    def test_chunk_holds_whole_write_units(self):
        geometry = FlashGeometry()
        assert geometry.sectors_per_chunk % geometry.write_unit_sectors == 0

    def test_page_and_block_sizes(self):
        geometry = FlashGeometry(pages_per_block=96)
        assert geometry.page_size == 16 * KIB
        assert geometry.block_size == 96 * 16 * KIB
        assert geometry.chip_size == (geometry.planes
                                      * geometry.blocks_per_plane
                                      * geometry.block_size)

    def test_unaligned_pages_per_block_rejected(self):
        """TLC paired pages require pages_per_block % 3 == 0."""
        with pytest.raises(GeometryError):
            FlashGeometry(cell=CellType.TLC, pages_per_block=512)

    def test_slc_any_pages_per_block_allowed(self):
        FlashGeometry(cell=CellType.SLC, pages_per_block=511)

    def test_invalid_planes_rejected(self):
        with pytest.raises(GeometryError):
            FlashGeometry(planes=3)

    def test_nonpositive_dimensions_rejected(self):
        with pytest.raises(GeometryError):
            FlashGeometry(pages_per_block=0)


class TestNandTiming:
    def test_presets_order_by_density(self):
        reads = [timing_for(cell).read_latency for cell in CellType]
        programs = [timing_for(cell).program_latency for cell in CellType]
        erases = [timing_for(cell).erase_latency for cell in CellType]
        assert reads == sorted(reads)
        assert programs == sorted(programs)
        assert erases == sorted(erases)

    def test_reads_much_faster_than_programs(self):
        for cell in CellType:
            timing = timing_for(cell)
            assert timing.read_latency * 5 <= timing.program_latency
            assert timing.program_latency < timing.erase_latency

    def test_transfer_time_scales_with_bytes(self):
        timing = NandTiming(read_latency=1e-5, program_latency=1e-4,
                            erase_latency=1e-3, channel_bandwidth=100 * MIB)
        assert timing.transfer_time(100 * MIB) == pytest.approx(1.0)
        assert timing.transfer_time(0) == 0.0

    def test_negative_transfer_rejected(self):
        with pytest.raises(ValueError):
            timing_for(CellType.TLC).transfer_time(-1)

    def test_multi_operation_times(self):
        timing = timing_for(CellType.TLC)
        assert timing.read_time(4) == pytest.approx(4 * timing.read_latency)
        assert timing.program_time(3) == pytest.approx(
            3 * timing.program_latency)
