"""Tests for chip geometry and the NAND timing model."""

import pytest

from repro.errors import GeometryError
from repro.nand import (
    CellType,
    FlashGeometry,
    NandTiming,
    SampledNandTiming,
    timing_for,
)
from repro.units import KIB, MIB


class TestFlashGeometry:
    def test_default_is_dual_plane_tlc_96k_write_unit(self):
        geometry = FlashGeometry()
        assert geometry.cell is CellType.TLC
        assert geometry.planes == 2
        assert geometry.write_unit_sectors == 24
        assert geometry.write_unit_bytes == 96 * KIB

    def test_paper_figure4_chunk_size(self):
        """Figure 4: 6144 sectors per chunk, 4 KB sectors -> 24 MB chunks."""
        geometry = FlashGeometry(pages_per_block=768)
        assert geometry.sectors_per_chunk == 6144
        assert geometry.chunk_size == 24 * MIB

    def test_chunk_holds_whole_write_units(self):
        geometry = FlashGeometry()
        assert geometry.sectors_per_chunk % geometry.write_unit_sectors == 0

    def test_page_and_block_sizes(self):
        geometry = FlashGeometry(pages_per_block=96)
        assert geometry.page_size == 16 * KIB
        assert geometry.block_size == 96 * 16 * KIB
        assert geometry.chip_size == (geometry.planes
                                      * geometry.blocks_per_plane
                                      * geometry.block_size)

    def test_unaligned_pages_per_block_rejected(self):
        """TLC paired pages require pages_per_block % 3 == 0."""
        with pytest.raises(GeometryError):
            FlashGeometry(cell=CellType.TLC, pages_per_block=512)

    def test_slc_any_pages_per_block_allowed(self):
        FlashGeometry(cell=CellType.SLC, pages_per_block=511)

    def test_invalid_planes_rejected(self):
        with pytest.raises(GeometryError):
            FlashGeometry(planes=3)

    def test_nonpositive_dimensions_rejected(self):
        with pytest.raises(GeometryError):
            FlashGeometry(pages_per_block=0)


class TestNandTiming:
    def test_presets_order_by_density(self):
        reads = [timing_for(cell).read_latency for cell in CellType]
        programs = [timing_for(cell).program_latency for cell in CellType]
        erases = [timing_for(cell).erase_latency for cell in CellType]
        assert reads == sorted(reads)
        assert programs == sorted(programs)
        assert erases == sorted(erases)

    def test_reads_much_faster_than_programs(self):
        for cell in CellType:
            timing = timing_for(cell)
            assert timing.read_latency * 5 <= timing.program_latency
            assert timing.program_latency < timing.erase_latency

    def test_transfer_time_scales_with_bytes(self):
        timing = NandTiming(read_latency=1e-5, program_latency=1e-4,
                            erase_latency=1e-3, channel_bandwidth=100 * MIB)
        assert timing.transfer_time(100 * MIB) == pytest.approx(1.0)
        assert timing.transfer_time(0) == 0.0

    def test_negative_transfer_rejected(self):
        with pytest.raises(ValueError):
            timing_for(CellType.TLC).transfer_time(-1)

    def test_multi_operation_times(self):
        timing = timing_for(CellType.TLC)
        assert timing.read_time(4) == pytest.approx(4 * timing.read_latency)
        assert timing.program_time(3) == pytest.approx(
            3 * timing.program_latency)


class TestSampledNandTiming:
    """The jittered timing model: seeded, mean-preserving, opt-in."""

    def _timing(self, seed=7):
        base = timing_for(CellType.TLC)
        return SampledNandTiming(
            read_latency=base.read_latency,
            program_latency=base.program_latency,
            erase_latency=base.erase_latency,
            read_sigma=0.1, program_sigma=0.1, erase_sigma=0.1, seed=seed)

    def test_same_seed_same_latency_sequence(self):
        first = self._timing(seed=7)
        second = self._timing(seed=7)
        ops = [first.read_time() for __ in range(50)]
        ops += [first.program_time() for __ in range(50)]
        ops += [first.erase_time() for __ in range(20)]
        replay = [second.read_time() for __ in range(50)]
        replay += [second.program_time() for __ in range(50)]
        replay += [second.erase_time() for __ in range(20)]
        assert ops == replay

    def test_different_seed_different_sequence(self):
        assert ([self._timing(seed=1).read_time() for __ in range(20)]
                != [self._timing(seed=2).read_time() for __ in range(20)])

    def test_zero_sigma_is_bit_identical_to_base(self):
        base = timing_for(CellType.TLC)
        flat = SampledNandTiming(
            read_latency=base.read_latency,
            program_latency=base.program_latency,
            erase_latency=base.erase_latency, seed=3)
        for __ in range(10):
            assert flat.read_time(2) == base.read_time(2)
            assert flat.program_time(3) == base.program_time(3)
            assert flat.erase_time() == base.erase_time()

    def test_jitter_is_mean_preserving(self):
        timing = self._timing(seed=11)
        samples = [timing.read_time() for __ in range(4000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(timing.read_latency, rel=0.02)
        assert min(samples) < timing.read_latency < max(samples)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            SampledNandTiming(read_latency=1e-5, program_latency=1e-4,
                              erase_latency=1e-3, read_sigma=-0.1)

    def test_multi_plane_read_scales_before_jitter(self):
        timing = self._timing(seed=5)
        single = [self._timing(seed=5).read_time(1) for __ in range(1)][0]
        triple = timing.read_time(3)
        # Same seed, first draw: the jitter factor is identical, so the
        # page count scales the result linearly.
        assert triple == pytest.approx(3 * single)
