"""Tests for the db_bench driver, the media manager and concurrent
in-simulation clients."""

import pytest

from repro.errors import MediaError, ReproError
from repro.lsm import DB, DBConfig, DbBench, MemEnv
from repro.nand import FlashGeometry
from repro.ocssd import (
    CommandStatus,
    DeviceGeometry,
    OpenChannelSSD,
    Ppa,
)
from repro.ox import BlockConfig, MediaManager, OXBlock
from repro.sim import Simulator


def make_mem_db(**overrides):
    sim = Simulator()
    env = MemEnv(sim, read_latency=1e-6, write_latency=1e-6)
    defaults = dict(block_size=1024, write_buffer_bytes=16 * 1024,
                    sstable_data_bytes=16 * 1024)
    defaults.update(overrides)
    return sim, DB(env, DBConfig(**defaults), sim)


class TestDbBench:
    def test_keys_and_values_shaped_like_the_paper(self):
        __, db = make_mem_db()
        bench = DbBench(db)
        assert len(bench.key(7)) == 16
        assert len(bench.value(7)) == 1024
        assert bench.key(7) < bench.key(8)   # ordered fill

    def test_fill_sequential_counts_and_series(self):
        __, db = make_mem_db()
        bench = DbBench(db, value_size=64, series_window=0.001)
        result = bench.fill_sequential(clients=3, ops_per_client=200)
        assert result.ops == 600
        assert result.ops_per_sec > 0
        assert result.series
        assert bench.populated_keys == 200

    def test_read_sequential_scans_in_order(self):
        __, db = make_mem_db()
        bench = DbBench(db, value_size=64)
        bench.fill_sequential(clients=1, ops_per_client=300)
        bench.quiesce()
        result = bench.read_sequential(clients=2, ops_per_client=100)
        assert result.ops == 200

    def test_read_random_requires_population(self):
        __, db = make_mem_db()
        bench = DbBench(db)
        with pytest.raises(ReproError, match="key_space"):
            bench.read_random(clients=1, ops_per_client=10)

    def test_read_random_deterministic_per_seed(self):
        def run(seed):
            __, db = make_mem_db()
            bench = DbBench(db, value_size=64, seed=seed)
            bench.fill_sequential(clients=1, ops_per_client=200)
            bench.quiesce()
            return bench.read_random(clients=2, ops_per_client=50).elapsed

        assert run(3) == run(3)

    def test_summary_renders(self):
        __, db = make_mem_db()
        bench = DbBench(db, value_size=64)
        result = bench.fill_sequential(clients=1, ops_per_client=50)
        text = result.summary()
        assert "fill-sequential" in text
        assert "kops/s" in text


class TestMediaManager:
    def make(self):
        geometry = DeviceGeometry(
            num_groups=2, pus_per_group=2,
            flash=FlashGeometry(blocks_per_plane=8, pages_per_block=6))
        device = OpenChannelSSD(geometry=geometry)
        return device, MediaManager(device)

    def test_sync_roundtrip(self):
        device, media = self.make()
        ws = media.geometry.ws_min
        ppas = [Ppa(0, 0, 0, s) for s in range(ws)]
        completion = media.write(ppas, [b"m" * 64] * ws)
        assert completion.ok
        assert media.read(ppas[:2]).data[1] == b"m" * 64
        media.flush()
        assert media.reset(Ppa(0, 1, 0, 0)).ok

    def test_scan_chunks_counts(self):
        device, media = self.make()
        assert len(media.scan_chunks()) == media.geometry.total_chunks

    def test_require_ok_raises_with_context(self):
        device, media = self.make()
        completion = media.read([Ppa(0, 0, 0, 0)])   # nothing written
        with pytest.raises(MediaError, match="probe"):
            media.require_ok(completion, "probe")

    def test_notifications_pass_through(self):
        device, media = self.make()
        device._notify(Ppa(0, 0, 0, 0), "wear-high", "test")
        notes = media.pop_notifications()
        assert len(notes) == 1
        assert media.pop_notifications() == []


class TestConcurrentClients:
    def test_in_sim_clients_interleave_on_ox_block(self):
        """Multiple simulated clients drive the FTL concurrently; all
        acknowledged writes are readable and attributable."""
        geometry = DeviceGeometry(
            num_groups=2, pus_per_group=2,
            flash=FlashGeometry(blocks_per_plane=24, pages_per_block=6))
        device = OpenChannelSSD(geometry=geometry)
        media = MediaManager(device)
        ftl = OXBlock.format(media, BlockConfig(wal_chunk_count=4,
                                                ckpt_chunks_per_slot=1))
        sim = device.sim
        sector = geometry.sector_size

        def client(base, count):
            for i in range(count):
                payload = f"{base}:{i}".encode().ljust(sector, b".")
                yield from ftl.write_proc(base + i, payload)

        clients = [sim.spawn(client(base, 20))
                   for base in (0, 1000, 2000)]
        sim.run_until(sim.all_of(clients))
        for base in (0, 1000, 2000):
            for i in range(20):
                assert ftl.read(base + i, 1).rstrip(b".") \
                    == f"{base}:{i}".encode()
        # Writes were serialized by the dispatch lock, never corrupted.
        assert ftl.stats.writes == 60

    def test_reads_proceed_while_writer_holds_lock(self):
        """Reads bypass the dispatch lock (§4.3: the read path only needs
        a mapping lookup)."""
        geometry = DeviceGeometry(
            num_groups=2, pus_per_group=2,
            flash=FlashGeometry(blocks_per_plane=24, pages_per_block=6))
        device = OpenChannelSSD(geometry=geometry)
        media = MediaManager(device)
        ftl = OXBlock.format(media, BlockConfig(wal_chunk_count=4,
                                                ckpt_chunks_per_slot=1))
        sim = device.sim
        sector = geometry.sector_size
        ftl.write(0, b"r" * sector)
        ftl.flush()

        read_times = []

        def reader():
            started = sim.now
            yield from ftl.read_proc(0, 1)
            read_times.append(sim.now - started)

        def writer():
            # A large transaction holding the dispatch lock for a while.
            yield from ftl.write_proc(100, b"w" * sector * 48)

        sim.spawn(writer())
        sim.spawn(reader())
        sim.run()
        baseline = sim.now
        started = sim.now
        ftl.read(0, 1)
        solo = device.sim.now - started
        # The concurrent read was not serialized behind the whole write.
        assert read_times[0] < solo * 20
