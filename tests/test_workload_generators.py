"""Quantitative tests for the workload generators.

The existing workload tests check bounds and determinism; these check
the *distributions*: Zipfian sample frequencies must match the
theoretical probabilities within a statistical tolerance, skew must
respond to theta, and the random-write driver must cover its LBA space
roughly uniformly.  Sample sizes are picked so the tolerances sit at
3-4 sigma of the binomial noise — deterministic seeds keep the checks
stable.
"""

import math

import pytest

from repro.errors import ReproError
from repro.units import KIB, MIB
from repro.workloads import (
    KeyValueGenerator,
    RandomReadWorkload,
    RandomWriteWorkload,
    ZipfianKeyChooser,
)


def zipf_probabilities(key_space, theta):
    weights = [1.0 / (rank ** theta) for rank in range(1, key_space + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def frequencies(samples, key_space):
    counts = [0] * key_space
    for s in samples:
        counts[s] += 1
    return [c / len(samples) for c in counts]


class TestZipfianDistribution:
    def test_head_frequencies_match_theory(self):
        """Observed top-rank frequencies within 10% of the Zipf pmf."""
        key_space, theta, n = 50, 1.0, 40_000
        chooser = ZipfianKeyChooser(key_space, theta=theta, seed=11)
        observed = frequencies(chooser.sample(n), key_space)
        expected = zipf_probabilities(key_space, theta)
        for rank in range(10):
            assert abs(observed[rank] - expected[rank]) \
                <= 0.10 * expected[rank], \
                f"rank {rank}: observed {observed[rank]:.4f} " \
                f"vs expected {expected[rank]:.4f}"

    def test_total_variation_distance_small(self):
        """Half the summed |observed - expected| stays under 3%."""
        key_space, theta, n = 100, 0.99, 50_000
        chooser = ZipfianKeyChooser(key_space, theta=theta, seed=5)
        observed = frequencies(chooser.sample(n), key_space)
        expected = zipf_probabilities(key_space, theta)
        tvd = 0.5 * sum(abs(o - e) for o, e in zip(observed, expected))
        assert tvd < 0.03, f"total variation distance {tvd:.4f}"

    def test_head_mass_grows_with_theta(self):
        """More skew = more of the mass on the top 10% of keys."""
        key_space, n = 200, 20_000
        masses = []
        for theta in (0.3, 0.8, 1.2):
            chooser = ZipfianKeyChooser(key_space, theta=theta, seed=7)
            samples = chooser.sample(n)
            masses.append(sum(1 for s in samples if s < key_space // 10) / n)
        assert masses[0] < masses[1] < masses[2]
        # And each observed head mass tracks its theoretical value.
        for theta, mass in zip((0.3, 0.8, 1.2), masses):
            expected = sum(zipf_probabilities(key_space,
                                              theta)[:key_space // 10])
            assert abs(mass - expected) < 0.03

    def test_low_theta_approaches_uniform(self):
        key_space, n = 20, 20_000
        chooser = ZipfianKeyChooser(key_space, theta=0.05, seed=3)
        observed = frequencies(chooser.sample(n), key_space)
        for freq in observed:
            assert abs(freq - 1 / key_space) < 0.02

    def test_deterministic_per_seed(self):
        first = ZipfianKeyChooser(64, seed=9).sample(500)
        second = ZipfianKeyChooser(64, seed=9).sample(500)
        assert first == second
        assert first != ZipfianKeyChooser(64, seed=10).sample(500)

    def test_every_key_reachable(self):
        """The CDF covers the whole key space: the tail is rare, not
        impossible."""
        chooser = ZipfianKeyChooser(4, theta=0.5, seed=1)
        seen = set(chooser.sample(5_000))
        assert seen == {0, 1, 2, 3}


class TestRandomWriteDistribution:
    def test_lba_starts_cover_the_space_uniformly(self):
        """Mean and quartiles of the start LBA behave uniformly."""
        space = 100_000
        workload = RandomWriteWorkload(lba_space=space, seed=13)
        ops = list(workload.operations(5_000))
        starts = sorted(op.lba for op in ops)
        mean = sum(starts) / len(starts)
        assert abs(mean / space - 0.5) < 0.02
        assert abs(starts[len(starts) // 4] / space - 0.25) < 0.03
        assert abs(starts[3 * len(starts) // 4] / space - 0.75) < 0.03

    def test_write_sizes_cover_their_range(self):
        """Sizes are uniform over [min_sectors, max_sectors]: the mean
        sits mid-range and both extremes occur (Figure 3's 'random
        writes of up to 1 MB')."""
        workload = RandomWriteWorkload(lba_space=10_000, sector_size=4096,
                                       min_bytes=4 * KIB, max_bytes=1 * MIB,
                                       seed=21)
        sizes = [op.num_sectors for op in workload.operations(5_000)]
        low, high = 1, MIB // 4096
        assert min(sizes) == low
        assert max(sizes) == high
        expected_mean = (low + high) / 2
        assert abs(sum(sizes) / len(sizes) - expected_mean) \
            < 0.03 * expected_mean

    def test_infinite_stream_when_count_is_zero(self):
        stream = RandomWriteWorkload(lba_space=10_000, seed=2).operations()
        taken = [next(stream) for __ in range(100)]
        assert len(taken) == 100

    def test_fill_bytes_in_payload_range(self):
        ops = RandomWriteWorkload(lba_space=10_000, seed=4).operations(300)
        fills = {op.fill for op in ops}
        assert all(1 <= fill <= 250 for fill in fills)
        assert len(fills) > 50   # not a constant


class TestKeyValueGenerator:
    def test_keys_sort_like_their_indexes(self):
        generator = KeyValueGenerator()
        keys = [generator.key(i) for i in (0, 1, 9, 10, 99, 1234)]
        assert keys == sorted(keys)

    def test_values_printable_and_deterministic(self):
        generator = KeyValueGenerator(value_size=64)
        values = {generator.value(i)[:1] for i in range(200)}
        assert len(values) > 10   # fill bytes vary with the index
        for value in values:
            assert 33 <= value[0] <= 122
        assert generator.value(7) == generator.value(7)


class TestValidationErrors:
    """Bad parameters raise ReproError naming the class and field."""

    def test_key_value_generator_key_size(self):
        with pytest.raises(ReproError, match="KeyValueGenerator.*key_size"):
            KeyValueGenerator(key_size=3)

    def test_key_value_generator_value_size(self):
        with pytest.raises(ReproError, match="KeyValueGenerator.*value_size"):
            KeyValueGenerator(value_size=0)

    def test_random_write_lba_space(self):
        with pytest.raises(ReproError,
                           match="RandomWriteWorkload.*lba_space"):
            RandomWriteWorkload(lba_space=4, max_bytes=1 * MIB)

    def test_random_read_lba_space(self):
        with pytest.raises(ReproError,
                           match="RandomReadWorkload.*lba_space"):
            RandomReadWorkload(lba_space=0, max_bytes=4 * KIB)

    def test_zipfian_key_space(self):
        with pytest.raises(ReproError, match="ZipfianKeyChooser.*key_space"):
            ZipfianKeyChooser(key_space=0)

    def test_zipfian_theta(self):
        with pytest.raises(ReproError, match="ZipfianKeyChooser.*theta"):
            ZipfianKeyChooser(key_space=10, theta=2.5)
