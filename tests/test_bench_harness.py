"""Guard rails for the benchmark harness itself.

A misconfigured collection pattern once made ``pytest benchmarks/
--benchmark-only`` silently collect nothing; these tests pin the harness
shape so that regression stays caught.
"""

import os
import subprocess
import sys

BENCH_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks")

EXPECTED_BENCHES = {
    "bench_fig1_landscape.py",
    "bench_unit_of_write.py",
    "bench_fig3_recovery.py",
    "bench_fig5_dbbench.py",
    "bench_fig6_timeline.py",
    "bench_fig7_copies.py",
    "bench_gc_locality.py",
    "bench_ablations.py",
    "bench_abstraction_spectrum.py",
    "bench_cluster_scaling.py",
}


def test_every_figure_has_a_bench_file():
    present = {name for name in os.listdir(BENCH_DIR)
               if name.startswith("bench_")}
    assert EXPECTED_BENCHES <= present


def test_benchmark_directory_collects():
    """`pytest benchmarks/` must actually find the bench functions."""
    result = subprocess.run(
        [sys.executable, "-m", "pytest", BENCH_DIR, "--collect-only", "-q"],
        capture_output=True, text=True, timeout=120,
        cwd=os.path.dirname(BENCH_DIR))
    assert result.returncode == 0, result.stderr
    # At least one collected test per bench group.
    assert "no tests ran" not in result.stdout
    total_line = [line for line in result.stdout.splitlines()
                  if "bench_" in line]
    assert len(total_line) >= len(EXPECTED_BENCHES)


def test_bench_modules_import_cleanly():
    import importlib.util
    for name in sorted(EXPECTED_BENCHES):
        path = os.path.join(BENCH_DIR, name)
        spec = importlib.util.spec_from_file_location(name[:-3], path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)


def test_result_names_are_sanitized_to_safe_slugs(tmp_path, monkeypatch):
    """Regression: a spec name with ``/`` escaped (or crashed out of)
    benchmarks/results/; an empty name wrote ``.txt``."""
    import pytest

    import repro.benchhelpers as bh
    from repro.errors import ReproError

    monkeypatch.setattr(bh, "RESULTS_DIR", str(tmp_path))
    path = bh.report("../evil/name", ["line"], metrics={"x": 1})
    assert os.path.dirname(path) == str(tmp_path)
    assert os.path.basename(path) == "evil-name.txt"
    assert os.path.exists(os.path.join(str(tmp_path), "evil-name.json"))
    assert bh.result_slug("perf_smoke") == "perf_smoke"
    assert bh.result_slug("a b/c") == "a-b-c"
    for empty in ("", "///", "..", None):
        with pytest.raises(ReproError, match="non-empty"):
            bh.result_slug(empty)


def test_report_pads_to_the_longest_metric_key(tmp_path, monkeypatch):
    """Regression: ``{key:>18s}`` misaligned cluster-length keys."""
    import repro.benchhelpers as bh
    from repro.obs.metrics import MetricsRegistry
    from repro.stack.runner import run_and_report
    from repro.stack.spec import StackSpec

    monkeypatch.setattr(bh, "RESULTS_DIR", str(tmp_path))
    registry = MetricsRegistry()
    registry.gauge("cluster.shard3.read_ops_per_sec").set(1.0)
    registry.gauge("x").set(2)
    path = bh.report_registry("pad-test", registry)
    lines = open(path).read().splitlines()[1:]
    keys = [line.partition("=")[0] for line in lines]
    # One shared pad width, sized by the longest key.
    assert len({len(key) for key in keys}) == 1
    assert len(keys[0]) >= len("cluster.shard3.read_ops_per_sec")

    run_and_report(StackSpec(
        name="pad-stack-test",
        geometry={"num_groups": 2, "pus_per_group": 2,
                  "chunks_per_pu": 16, "pages_per_block": 6},
        ftl="oxblock",
        ftl_config={"wal_chunk_count": 4, "ckpt_chunks_per_slot": 2},
        workload={"kind": "raw_fill_read", "fill_ops": 4, "read_ops": 8}))
    lines = open(os.path.join(
        str(tmp_path), "pad-stack-test.txt")).read().splitlines()[1:]
    widths = {len(line.partition("=")[0]) for line in lines}
    assert len(widths) == 1
