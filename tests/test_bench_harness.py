"""Guard rails for the benchmark harness itself.

A misconfigured collection pattern once made ``pytest benchmarks/
--benchmark-only`` silently collect nothing; these tests pin the harness
shape so that regression stays caught.
"""

import os
import subprocess
import sys

BENCH_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks")

EXPECTED_BENCHES = {
    "bench_fig1_landscape.py",
    "bench_unit_of_write.py",
    "bench_fig3_recovery.py",
    "bench_fig5_dbbench.py",
    "bench_fig6_timeline.py",
    "bench_fig7_copies.py",
    "bench_gc_locality.py",
    "bench_ablations.py",
    "bench_abstraction_spectrum.py",
}


def test_every_figure_has_a_bench_file():
    present = {name for name in os.listdir(BENCH_DIR)
               if name.startswith("bench_")}
    assert EXPECTED_BENCHES <= present


def test_benchmark_directory_collects():
    """`pytest benchmarks/` must actually find the bench functions."""
    result = subprocess.run(
        [sys.executable, "-m", "pytest", BENCH_DIR, "--collect-only", "-q"],
        capture_output=True, text=True, timeout=120,
        cwd=os.path.dirname(BENCH_DIR))
    assert result.returncode == 0, result.stderr
    # At least one collected test per bench group.
    assert "no tests ran" not in result.stdout
    total_line = [line for line in result.stdout.splitlines()
                  if "bench_" in line]
    assert len(total_line) >= len(EXPECTED_BENCHES)


def test_bench_modules_import_cleanly():
    import importlib.util
    for name in sorted(EXPECTED_BENCHES):
        path = os.path.join(BENCH_DIR, name)
        spec = importlib.util.spec_from_file_location(name[:-3], path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
