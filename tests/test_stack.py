"""repro.stack: spec round-trip, builder-vs-hand-wired equivalence,
spec validation, and the module runner."""

import json

import pytest

from repro.errors import ReproError
from repro.lsm import DB, DBConfig, DbBench, HorizontalPlacement, LightLSMEnv
from repro.ocssd import DeviceGeometry, OpenChannelSSD
from repro.nand import FlashGeometry
from repro.ox import MediaManager
from repro.stack import StackSpec, build_stack, run_spec
from repro.units import KIB, MIB

SMOKE_GEOMETRY = {"num_groups": 4, "pus_per_group": 2,
                  "chunks_per_pu": 24, "pages_per_block": 6}
SMOKE_DB = {"block_size": 96 * KIB, "write_buffer_bytes": 1 * MIB}


def smoke_spec(**overrides) -> StackSpec:
    return StackSpec(name="stack-test", geometry=dict(SMOKE_GEOMETRY),
                     ftl="lightlsm", db=dict(SMOKE_DB), **overrides)


# -- round-trip ---------------------------------------------------------------


def test_spec_round_trips_through_dict():
    spec = smoke_spec(
        seed=7,
        workload={"kind": "fill_then_read_random", "clients": 2,
                  "ops_per_client": 50},
        tenants=[{"name": "victim", "weight": 3.0},
                 {"name": "aggressor"}],
        faults={"seed": 3, "grown_bad": [[0, 1, 2, 5]]},
        obs=True)
    data = spec.to_dict()
    # The dict form is JSON-clean (what spec files and results embed).
    rebuilt = StackSpec.from_dict(json.loads(json.dumps(data)))
    assert rebuilt == spec
    assert rebuilt.to_dict() == data


def test_spec_dict_omits_absent_sections():
    data = smoke_spec().to_dict()
    assert "workload" not in data
    assert "faults" not in data


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ReproError, match="unknown field"):
        StackSpec.from_dict({"ftl": "lightlsm", "banana": 1})
    with pytest.raises(ReproError, match="unknown field"):
        StackSpec.from_dict({"geometry": {"num_grops": 4}})


# -- equivalence with the legacy hand-wired assembly --------------------------


def legacy_lightlsm_run():
    """The pre-stack wiring every bench used to repeat, verbatim."""
    geometry = DeviceGeometry(
        num_groups=SMOKE_GEOMETRY["num_groups"],
        pus_per_group=SMOKE_GEOMETRY["pus_per_group"],
        flash=FlashGeometry(
            blocks_per_plane=SMOKE_GEOMETRY["chunks_per_pu"],
            pages_per_block=SMOKE_GEOMETRY["pages_per_block"]))
    device = OpenChannelSSD(geometry=geometry)
    media = MediaManager(device)
    env = LightLSMEnv(media, HorizontalPlacement())
    db = DB(env, DBConfig(**SMOKE_DB), device.sim)
    bench = DbBench(db, seed=0)
    fill = bench.fill_sequential(clients=2, ops_per_client=120)
    bench.quiesce()
    read = bench.read_random(clients=2, ops_per_client=60)
    return device.sim, fill, read


def test_build_stack_matches_hand_wired_assembly():
    stack = build_stack(smoke_spec())
    bench = stack.dbbench()
    fill = bench.fill_sequential(clients=2, ops_per_client=120)
    bench.quiesce()
    read = bench.read_random(clients=2, ops_per_client=60)

    legacy_sim, legacy_fill, legacy_read = legacy_lightlsm_run()

    # Deterministic-identical: same simulated clock, same throughput
    # (ops_per_sec is ops over *simulated* elapsed time), same event count.
    assert stack.sim.now == legacy_sim.now
    assert stack.sim.events_processed == legacy_sim.events_processed
    assert fill.ops == legacy_fill.ops
    assert fill.ops_per_sec == legacy_fill.ops_per_sec
    assert fill.series == legacy_fill.series
    assert read.ops_per_sec == legacy_read.ops_per_sec


def test_build_stack_is_self_deterministic():
    runs = [run_spec(smoke_spec(
        workload={"kind": "fill_then_read_random", "clients": 2,
                  "ops_per_client": 80})) for __ in range(2)]
    assert runs[0] == runs[1]


# -- validation ---------------------------------------------------------------


def test_unknown_ftl_flavor_raises():
    with pytest.raises(ReproError, match="unknown FTL flavor"):
        build_stack(StackSpec(ftl="pblk"))


def test_tenant_weight_must_be_positive():
    for weight in (0.0, -1.0):
        with pytest.raises(ReproError, match="weight must be > 0"):
            smoke_spec(tenants=[{"name": "t", "weight": weight}]).validate()


def test_host_flavor_mismatch_raises():
    with pytest.raises(ReproError, match="table-capable"):
        StackSpec(ftl="eleos", host="db").validate()
    with pytest.raises(ReproError, match="llama"):
        StackSpec(ftl="lightlsm", host="llama").validate()


def test_duplicate_tenant_names_raise():
    with pytest.raises(ReproError, match="duplicate tenant"):
        smoke_spec(tenants=[{"name": "a"}, {"name": "a"}]).validate()


def test_lightlsm_rejects_foreign_ftl_config():
    with pytest.raises(ReproError, match="chunks_per_sstable"):
        build_stack(smoke_spec(ftl_config={"wal_chunk_count": 4}))


def test_bad_config_key_names_the_section():
    with pytest.raises(ReproError, match="ftl_config"):
        build_stack(StackSpec(geometry=SMOKE_GEOMETRY, ftl="oxblock",
                              ftl_config={"no_such_knob": 1}))


# -- sidecars through the spec ------------------------------------------------


def test_spec_wires_sidecars_and_tenants():
    stack = build_stack(smoke_spec(
        obs=True,
        tenants=[{"name": "victim", "weight": 3.0},
                 {"name": "aggressor", "weight": 1.0}],
        faults={"seed": 1}))
    device = stack.device
    assert device.obs is stack.obs
    assert device.faults is stack.faults
    assert device.qos is stack.qos
    assert stack.tenant("victim").weight == 3.0
    victim_pus = stack.placement_plan[stack.tenant("victim")]
    aggressor_pus = stack.placement_plan[stack.tenant("aggressor")]
    assert not set(victim_pus) & set(aggressor_pus)   # partitioned


def test_raw_device_stack_has_no_ftl():
    stack = build_stack(StackSpec(geometry=SMOKE_GEOMETRY, ftl="none"))
    assert stack.ftl is None and stack.env is None and stack.db is None
    with pytest.raises(ReproError, match="no DB host"):
        stack.dbbench()


# -- the runner ---------------------------------------------------------------


def test_run_spec_raw_fill_read():
    metrics = run_spec(StackSpec(
        geometry=SMOKE_GEOMETRY, ftl="oxblock",
        ftl_config={"wal_chunk_count": 4, "ckpt_chunks_per_slot": 2},
        workload={"kind": "raw_fill_read", "fill_ops": 10, "read_ops": 20}))
    assert metrics["fill_ops"] == 10
    assert metrics["read_ops"] == 20
    assert metrics["sim_seconds"] > 0


def test_raw_workload_honors_seed_zero():
    """Regression: ``seed or 17`` silently replaced the documented
    default seed 0 with 17 — the raw-workload read sequences for seed 0
    and seed 17 must differ, and seed 0 must reproduce itself."""
    from repro.stack.runner import _raw_workload

    def read_lbas(seed: int) -> list:
        stack = build_stack(StackSpec(
            seed=seed, geometry=SMOKE_GEOMETRY, ftl="oxblock",
            ftl_config={"wal_chunk_count": 4, "ckpt_chunks_per_slot": 2},
            workload={"kind": "raw_fill_read",
                      "fill_ops": 6, "read_ops": 30}))
        sequence = []
        real_read = stack.ftl.read

        def recording_read(lba, sectors=1):
            sequence.append(lba)
            return real_read(lba, sectors)

        stack.ftl.read = recording_read
        _raw_workload(stack)
        return sequence

    zero, seventeen = read_lbas(0), read_lbas(17)
    assert len(zero) == len(seventeen) == 30
    assert zero != seventeen, "seed 0 must not alias seed 17"
    assert zero == read_lbas(0), "seed 0 must be reproducible"


def test_module_runner_executes_a_json_spec(tmp_path, capsys):
    from repro.stack.__main__ import main
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "name": "runner-test", "geometry": SMOKE_GEOMETRY,
        "ftl": "lightlsm", "db": SMOKE_DB,
        "workload": {"kind": "fill_sequential", "clients": 1,
                     "ops_per_client": 40}}))
    assert main([str(spec_path)]) == 0
    out = capsys.readouterr().out
    assert "runner-test" in out and "fill_ops_per_sec" in out


def test_module_runner_rejects_a_bad_spec(tmp_path, capsys):
    from repro.stack.__main__ import main
    spec_path = tmp_path / "bad.json"
    spec_path.write_text(json.dumps({"ftl": "pblk"}))
    assert main([str(spec_path)]) == 2
    assert "unknown FTL flavor" in capsys.readouterr().err
