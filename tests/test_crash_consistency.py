"""Randomized power-cut crash-consistency runs (the ISSUE's checker).

Each test drives :func:`repro.faults.checker.run_crash_check`: a seeded
workload against OX-Block with a fault plan attached, a power cut at a
random media-op count (or simulated time), recovery, and the four
invariant families (structure, durability, atomicity, functionality)
checked against a shadow model.  A violation raises
:class:`InvariantViolation` with the seed, so any failure here is a
one-line repro.

The seed ranges are fixed: these tests are deterministic, and together
with ``scripts/check.sh`` they keep the ISSUE's ">= 50 randomized cut
points, zero violations" acceptance criterion enforced in CI.
"""

import pytest

from repro.faults.checker import CheckConfig, CheckResult, run_crash_check

PLAIN_SEEDS = range(18)
FAULT_SEEDS = range(100, 112)
TIME_SEEDS = range(200, 206)


class TestPowerCutConsistency:
    @pytest.mark.parametrize("seed", PLAIN_SEEDS)
    def test_plain_power_cut(self, seed):
        run_crash_check(CheckConfig(seed=seed))

    @pytest.mark.parametrize("seed", FAULT_SEEDS)
    def test_power_cut_with_media_faults(self, seed):
        run_crash_check(CheckConfig(seed=seed, media_faults=True))

    @pytest.mark.parametrize("seed", TIME_SEEDS)
    def test_power_cut_at_time(self, seed):
        run_crash_check(CheckConfig(seed=seed, time_cut=True))

    def test_runs_are_deterministic(self):
        first = run_crash_check(CheckConfig(seed=7))
        second = run_crash_check(CheckConfig(seed=7))
        assert first == second

    def test_aggregate_coverage(self):
        """The fixed seed set must actually exercise the hard paths:
        cuts landing mid-workload, GC running before the cut, torn
        write units, media faults, and recovery dropping torn txns.
        A plan change that quietly stops covering one of these should
        fail here, not silently weaken the suite."""
        results = [run_crash_check(CheckConfig(seed=s)) for s in PLAIN_SEEDS]
        results += [run_crash_check(CheckConfig(seed=s, media_faults=True))
                    for s in FAULT_SEEDS]
        results += [run_crash_check(CheckConfig(seed=s, time_cut=True))
                    for s in TIME_SEEDS]

        def total(attr):
            return sum(getattr(r, attr) for r in results)

        assert sum(r.cut_fired_during_workload for r in results) >= 10
        assert total("txns_acked") > 1000
        assert total("txns_maybe") >= 5          # ops in flight at the cut
        assert total("lbas_checked") > 500
        assert total("gc_chunks_recycled") > 0   # GC active before a cut
        assert total("torn_chunks") > 0          # torn ws_min units seen
        assert total("programs_failed") > 0      # media faults fired
        assert total("erases_failed") > 0
        assert total("txns_dropped") > 0         # recovery dropped torn txns
        assert sum(r.probe_ran for r in results) >= len(results) // 2
