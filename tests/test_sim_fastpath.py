"""Regression tests for the simulation-kernel fast paths.

The kernel special-cases the hottest patterns — a process blocked on a
bare timeout, ``all_of`` over freshly spawned processes, and the tuple
heap entries — and these tests pin down the semantics those fast paths
must preserve: interrupt/abandon behaviour, first-failure propagation,
and bit-identical replay of identical workloads.
"""

import pytest

from repro.sim import Interrupt, Simulator


# -- interrupting a timeout-blocked process (the Timeout fast path) ------------


def test_interrupt_of_timeout_blocked_process_delivers_cause():
    sim = Simulator()

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, sim.now)
        return ("slept", None, sim.now)

    proc = sim.spawn(sleeper(sim))

    def killer(sim):
        yield sim.timeout(1.5)
        proc.interrupt(cause="shutdown")

    sim.spawn(killer(sim))
    assert sim.run_until(proc) == ("interrupted", "shutdown", 1.5)


def test_interrupted_timeout_never_resumes_process_again():
    """The stale timeout still fires in the heap; its callback must see the
    process no longer waiting on it and do nothing (abandon semantics)."""
    sim = Simulator()
    wakeups = []

    def sleeper(sim):
        try:
            yield sim.timeout(10.0)
            wakeups.append("original-timeout")
        except Interrupt:
            wakeups.append("interrupt")
        yield sim.timeout(50.0)  # outlives the stale 10.0 timeout
        wakeups.append("second-timeout")
        return sim.now

    proc = sim.spawn(sleeper(sim))

    def killer(sim):
        yield sim.timeout(2.0)
        proc.interrupt()

    sim.spawn(killer(sim))
    # Run well past the abandoned timeout's expiry.
    assert sim.run_until(proc) == 52.0
    assert wakeups == ["interrupt", "second-timeout"]


def test_interrupt_timeout_blocked_process_twice():
    """A second interrupt while the process handles the first must also be
    delivered exactly once, in order."""
    sim = Simulator()
    seen = []

    def sleeper(sim):
        for _ in range(2):
            try:
                yield sim.timeout(10.0)
                seen.append("timeout")
            except Interrupt as interrupt:
                seen.append(interrupt.cause)
        return sim.now

    proc = sim.spawn(sleeper(sim))

    def killer(sim):
        yield sim.timeout(1.0)
        proc.interrupt(cause="first")
        yield sim.timeout(1.0)
        proc.interrupt(cause="second")

    sim.spawn(killer(sim))
    sim.run_until(proc)
    assert seen == ["first", "second"]


# -- all_of failure propagation -----------------------------------------------


class BoomError(Exception):
    pass


def test_all_of_propagates_first_failure():
    sim = Simulator()

    def ok(sim, delay):
        yield sim.timeout(delay)
        return delay

    def boom(sim, delay, label):
        yield sim.timeout(delay)
        raise BoomError(label)

    def waiter(sim):
        procs = [sim.spawn(ok(sim, 5.0)),
                 sim.spawn(boom(sim, 1.0, "early")),
                 sim.spawn(boom(sim, 3.0, "late"))]
        try:
            yield sim.all_of(procs)
        except BoomError as exc:
            return (str(exc), sim.now)
        return ("no failure", sim.now)

    # The earliest failure is the one delivered, at its own timestamp;
    # the later failure is defused and must not crash the run.
    result = sim.run_until(sim.spawn(waiter(sim)))
    assert result == ("early", 1.0)
    sim.run()  # drain the surviving timeouts; no unhandled failure raises


def test_all_of_success_values_keep_input_order():
    sim = Simulator()

    def ok(sim, delay):
        yield sim.timeout(delay)
        return delay

    def waiter(sim):
        procs = [sim.spawn(ok(sim, d)) for d in (3.0, 1.0, 2.0)]
        values = yield sim.all_of(procs)
        return values

    assert sim.run_until(sim.spawn(waiter(sim))) == [3.0, 1.0, 2.0]


# -- determinism: identical runs, identical trajectories -----------------------


def _contended_workload():
    """A workload with many same-instant wakeups contending for a lock, so
    any drift in event ordering shows up in the log."""
    import random

    from repro.sim import Resource

    sim = Simulator()
    lock = Resource(sim)
    rng = random.Random(1234)
    log = []

    def worker(sim, ident, delay, hold):
        yield sim.timeout(delay)
        grant = lock.request()
        yield grant
        try:
            log.append((ident, sim.now))
            yield sim.timeout(hold)
        finally:
            lock.release()

    procs = []
    for ident in range(40):
        delay = rng.choice([1.0, 1.0, 2.0, 3.0])   # deliberate ties
        hold = rng.choice([0.5, 0.25])
        procs.append(sim.spawn(worker(sim, ident, delay, hold)))

    def join(sim):
        yield sim.all_of(procs)
        return sim.now

    final = sim.run_until(sim.spawn(join(sim)))
    return final, tuple(log), sim.events_processed


def test_double_run_is_bit_identical_including_stats():
    first = _contended_workload()
    second = _contended_workload()
    assert first == second
    # Ties at the same instant resolved by spawn order, not dict/hash order.
    final, log, events = first
    assert len(log) == 40
    assert events > 0
