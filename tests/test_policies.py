"""The FTL policy lab (repro.policies): victim selection, placement,
the write-less cache host, and their StackSpec wiring."""

import random

import pytest

from repro.errors import ReproError
from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, OpenChannelSSD
from repro.ox import BlockConfig, MediaManager, OXBlock
from repro.ox.ftl.metadata import ChunkTable, FtlChunkState
from repro.policies import (
    PLACEMENT_POLICIES,
    VICTIM_POLICIES,
    AgePartitionedVictimPolicy,
    CostBenefitVictimPolicy,
    GreedyVictimPolicy,
    TimedVictimPolicy,
    VictimPolicy,
    WlfcConfig,
    WriteLessCache,
    resolve_placement_policy,
    resolve_victim_policy,
)
from repro.stack import StackSpec, build_stack
from repro.stack.runner import run_spec
from repro.stack import spec as spec_module

SS = 4096


def make_stack(groups=2, pus=2, chunks=16, pages=12, config=None):
    geometry = DeviceGeometry(
        num_groups=groups, pus_per_group=pus,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=pages))
    device = OpenChannelSSD(geometry=geometry)
    media = MediaManager(device)
    config = config or BlockConfig(wal_chunk_count=4, ckpt_chunks_per_slot=2)
    return device, media, OXBlock.format(media, config), config


def make_table(valid_counts, write_seqs=None, groups=1):
    """A synthetic one-group-per-policy candidate pool: chunk i FULL
    with the given valid count (and optional last-write stamp)."""
    geometry = DeviceGeometry(
        num_groups=max(1, groups), pus_per_group=1,
        flash=FlashGeometry(blocks_per_plane=max(8, len(valid_counts)),
                            pages_per_block=6))
    keys = [(0, 0, chunk) for chunk in range(len(valid_counts))]
    table = ChunkTable(geometry, iter(keys))
    for index, key in enumerate(keys):
        info = table.get(key)
        info.state = FtlChunkState.FULL
        info.valid_count = valid_counts[index]
        if write_seqs is not None:
            info.write_seq = write_seqs[index]
            table._seq = max(table._seq, write_seqs[index])
    return table


class TestVictimOrdering:
    def test_greedy_orders_min_valid_first(self):
        table = make_table([30, 10, 20, 10])
        order = GreedyVictimPolicy().select(table.gc_candidates(0), table)
        assert [info.valid_count for info in order] == [10, 10, 20, 30]
        # Equal valid counts break on the fixed linear index.
        assert [info.key[2] for info in order[:2]] == [1, 3]

    def test_default_matches_legacy_stable_sort(self):
        # The historical collector sorted the table-order candidate list
        # stably by valid count alone; "default" must reproduce that
        # order exactly, ties included.
        table = make_table([12, 6, 12, 6, 0, 12, 6])
        candidates = table.gc_candidates(0)
        legacy = sorted(candidates, key=lambda info: info.valid_count)
        chosen = resolve_victim_policy("default").select(candidates, table)
        assert [info.key for info in chosen] == [info.key for info in legacy]

    def test_cost_benefit_prefers_old_cold(self):
        # Same emptiness, different age: the older chunk wins.
        table = make_table([10, 10], write_seqs=[100, 900])
        order = CostBenefitVictimPolicy().select(
            table.gc_candidates(0), table)
        assert [info.write_seq for info in order] == [100, 900]

    def test_cost_benefit_age_beats_slight_emptiness(self):
        # A young, slightly emptier chunk loses to an old, slightly
        # fuller one — the anti-greedy case the policy exists for.
        table = make_table([10, 12], write_seqs=[990, 10])
        greedy = GreedyVictimPolicy().select(table.gc_candidates(0), table)
        assert greedy[0].valid_count == 10
        cb = CostBenefitVictimPolicy().select(table.gc_candidates(0), table)
        assert cb[0].valid_count == 12
        assert cb[0].write_seq == 10

    def test_age_partitioned_offers_cold_generation_first(self):
        # Youngest chunk is emptiest; it must still wait behind the
        # cold generation.
        table = make_table([20, 24, 4, 2],
                           write_seqs=[10, 20, 900, 950])
        order = AgePartitionedVictimPolicy().select(
            table.gc_candidates(0), table)
        # Cold half (write_seq 10, 20) greedily first, then young half.
        assert [info.valid_count for info in order] == [20, 24, 2, 4]

    def test_age_partitioned_cold_fraction_validated(self):
        with pytest.raises(ValueError):
            AgePartitionedVictimPolicy(cold_fraction=0.0)
        with pytest.raises(ValueError):
            AgePartitionedVictimPolicy(cold_fraction=1.5)

    def test_timed_wrapper_transparent_and_records(self):
        table = make_table([30, 10, 20])
        timed = TimedVictimPolicy(GreedyVictimPolicy())
        plain = GreedyVictimPolicy().select(table.gc_candidates(0), table)
        wrapped = timed.select(table.gc_candidates(0), table)
        assert [i.key for i in wrapped] == [i.key for i in plain]
        assert len(timed.samples) == 1
        assert timed.percentile(99) >= 0.0

    def test_victims_in_group_tie_break_is_linear(self):
        table = make_table([6, 6, 6, 6])
        order = table.victims_in_group(0)
        assert [info.key[2] for info in order] == [0, 1, 2, 3]

    def test_registry_rejects_unknown_names(self):
        with pytest.raises(ReproError) as excinfo:
            resolve_victim_policy("lifo")
        assert "cost_benefit" in str(excinfo.value)
        with pytest.raises(ReproError) as excinfo:
            resolve_placement_policy("diagonal")
        assert "stream_partitioned" in str(excinfo.value)

    def test_spec_literals_mirror_registries(self):
        assert set(spec_module.GC_POLICIES) == set(VICTIM_POLICIES)
        assert set(spec_module.PLACEMENT_POLICIES) == set(PLACEMENT_POLICIES)


def _invalidate(ftl, span_units, unit, pattern, ops, seed=7):
    """Overwrite *ops* unit-sized writes over the filled span."""
    payload = bytes(unit * SS)
    if pattern == "uniform":
        rng = random.Random(seed)
        picks = [rng.randrange(span_units) for __ in range(ops)]
    elif pattern == "zipf":
        from repro.workloads import ZipfianKeyChooser
        picks = ZipfianKeyChooser(span_units, theta=0.99,
                                  seed=seed).sample(ops)
    else:   # sequential overwrite of the first quarter
        hot = max(1, span_units // 4)
        picks = [index % hot for index in range(ops)]
    for pick in picks:
        ftl.write(pick * unit, payload)


def _collect_one(pattern, policy_name):
    """Fill + invalidate with GC off, then collect exactly one victim
    under *policy_name*; returns (victim valid count, relocated)."""
    config = BlockConfig(wal_chunk_count=4, ckpt_chunks_per_slot=2,
                         gc_enabled=False, gc_policy=policy_name)
    device, __m, ftl, __c = make_stack(config=config)
    geometry = device.geometry
    unit = geometry.ws_min
    span_units = (ftl.provisioner.free_chunks()
                  * geometry.sectors_per_chunk) // (2 * unit)
    payload = bytes(unit * SS)
    for index in range(span_units):
        ftl.write(index * unit, payload)
    _invalidate(ftl, span_units, unit, pattern, ops=40)
    ftl.flush()
    device.sim.run()
    group = ftl.gc.marked_group
    chosen = ftl.gc.victims(group)
    first_valid = chosen[0].valid_count if chosen else None
    recycled = device.sim.run_until(device.sim.spawn(
        ftl.gc.collect_group_locked_proc(group, max_victims=1)))
    assert recycled == 1
    return first_valid, ftl.gc.stats.sectors_relocated


class TestVictimPoliciesLive:
    @pytest.mark.parametrize("pattern", ["uniform", "zipf", "sequential"])
    def test_greedy_minimizes_relocation_per_decision(self, pattern):
        results = {name: _collect_one(pattern, name)
                   for name in ("greedy", "cost_benefit",
                                "age_partitioned")}
        # One collection relocates exactly the victim's live sectors...
        for name, (first_valid, relocated) in results.items():
            assert relocated == first_valid, name
        # ...and greedy's choice is the cheapest of the three.
        greedy_cost = results["greedy"][1]
        for name, (__, relocated) in results.items():
            assert greedy_cost <= relocated, name

    def test_default_run_bit_identical_to_explicit_legacy(self):
        class LegacyVictimPolicy(VictimPolicy):
            """The pre-policy collector's exact ordering: a stable sort
            of the table-order candidates by valid count alone."""
            name = "legacy"

            def select(self, candidates, table):
                return sorted(candidates,
                              key=lambda info: info.valid_count)

        def hammer(policy):
            config = BlockConfig(wal_chunk_count=2, ckpt_chunks_per_slot=1,
                                 gc_low_watermark=6, gc_high_watermark=10)
            device, __m, ftl, __c = make_stack(groups=2, pus=2, chunks=8,
                                               pages=6, config=config)
            if policy is not None:
                ftl.gc.victim_policy = policy
            for round_ in range(120):
                for lba in range(8):
                    ftl.write(lba, bytes([round_ % 251]) * SS)
            ftl.flush()
            device.sim.run()
            assert ftl.gc.stats.chunks_recycled > 0
            return (round(device.sim.now, 9), device.sim.events_processed,
                    ftl.gc.stats.chunks_recycled,
                    ftl.gc.stats.sectors_relocated)

        assert hammer(None) == hammer(LegacyVictimPolicy())

    def test_policies_change_victim_order_but_preserve_data(self):
        def run(policy_name):
            config = BlockConfig(wal_chunk_count=2, ckpt_chunks_per_slot=1,
                                 gc_low_watermark=6, gc_high_watermark=10,
                                 gc_policy=policy_name)
            device, __m, ftl, __c = make_stack(groups=2, pus=2, chunks=8,
                                               pages=6, config=config)
            for round_ in range(120):
                for lba in range(8):
                    ftl.write(lba, bytes([(round_ + lba) % 251]) * SS)
            ftl.flush()
            device.sim.run()
            assert ftl.gc.stats.chunks_recycled > 0
            for lba in range(8):
                assert ftl.read(lba, 1) == bytes([(119 + lba) % 251]) * SS
            return device.sim.events_processed

        run("cost_benefit")
        run("age_partitioned")


class TestPlacementPolicies:
    def _spec(self, placement_policy, host="none"):
        return StackSpec(
            name=f"place_{placement_policy}",
            geometry={"num_groups": 4, "pus_per_group": 2,
                      "chunks_per_pu": 8, "pages_per_block": 6},
            ftl="oxblock", host=host,
            placement_policy=placement_policy,
            workload={"kind": "raw_fill_read", "fill_ops": 40,
                      "read_ops": 60})

    def test_striped_is_bit_identical_to_default(self):
        def nonwall(metrics):
            return {key: value for key, value in metrics.items()
                    if key != "ops_per_sec"}
        default = run_spec(self._spec("default"))
        striped = run_spec(self._spec("striped"))
        assert nonwall(default) == nonwall(striped)

    def _mapped_groups(self, placement_policy, fill_units=12):
        config = BlockConfig(wal_chunk_count=4, ckpt_chunks_per_slot=1,
                             placement_policy=placement_policy)
        device, __m, ftl, __c = make_stack(groups=4, pus=2, chunks=8,
                                           pages=6, config=config)
        unit = device.geometry.ws_min
        payload = bytes(unit * SS)
        for index in range(fill_units):
            ftl.write(index * unit, payload)
        ftl.flush()
        device.sim.run()
        return {device.geometry.delinearize(linear).group
                for __, linear in ftl.page_map.items()}

    def test_alternative_placements_steer_allocation(self):
        # Striped round-robins every group; the partitioned policy pins
        # the user stream to its slot's groups (0 and 2 of 4); hotcold
        # fills its frontier group before advancing, so a small fill
        # stays wherever the frontier opened.
        assert self._mapped_groups("striped") == {0, 1, 2, 3}
        assert self._mapped_groups("stream_partitioned") <= {0, 2}
        assert len(self._mapped_groups("hotcold", fill_units=6)) == 1

    def test_preference_not_restriction(self):
        # Every policy must offer the full PU set (preferred first,
        # fallback after), or out-of-space semantics would change.
        device, __m, ftl, __c = make_stack(groups=2, pus=2)
        prov = ftl.provisioner
        state = prov._stream("user")
        for name in PLACEMENT_POLICIES:
            policy = resolve_placement_policy(name)
            cycle = policy.pu_cycle("user", state, None,
                                    prov._all_pus, prov)
            assert sorted(cycle) == sorted(prov._all_pus), name

    def test_gc_group_hint_always_wins(self):
        # Group-local GC is an invariant: with a group= hint, only that
        # group's PUs may appear, whatever the policy prefers.
        device, __m, ftl, __c = make_stack(groups=2, pus=2)
        prov = ftl.provisioner
        state = prov._stream("gc")
        for name in PLACEMENT_POLICIES:
            policy = resolve_placement_policy(name)
            cycle = policy.pu_cycle("gc", state, 1,
                                    prov._all_pus, prov)
            assert cycle and all(pu[0] == 1 for pu in cycle), name

    def test_data_survives_each_placement(self):
        for name in ("striped", "stream_partitioned", "hotcold"):
            config = BlockConfig(wal_chunk_count=4, ckpt_chunks_per_slot=2,
                                 placement_policy=name)
            device, __m, ftl, __c = make_stack(config=config)
            for lba in range(0, 64, 2):
                ftl.write(lba, bytes([lba % 251]) * SS)
            ftl.flush()
            device.sim.run()
            for lba in range(0, 64, 2):
                assert ftl.read(lba, 1) == bytes([lba % 251]) * SS, name


class TestWriteLessCache:
    def _cache(self, cache_sectors=8, evict_to_fraction=0.5):
        device, __m, ftl, __c = make_stack()
        cache = WriteLessCache(ftl, WlfcConfig(
            cache_sectors=cache_sectors,
            evict_to_fraction=evict_to_fraction))
        return device, ftl, cache

    def test_config_validation(self):
        with pytest.raises(ReproError):
            WlfcConfig(cache_sectors=0).validate()
        with pytest.raises(ReproError):
            WlfcConfig(evict_to_fraction=1.0).validate()
        with pytest.raises(ReproError):
            WriteLessCache(object(), WlfcConfig(cache_sectors=-1))

    def test_readback_through_cache(self):
        __, ftl, cache = self._cache(cache_sectors=64)
        cache.write(0, b"a" * SS + b"b" * SS)
        assert cache.read(0, 1) == b"a" * SS
        assert cache.read(0, 2) == b"a" * SS + b"b" * SS
        assert cache.stats.read_hits == 3

    def test_read_mixes_staged_and_flash_sectors(self):
        device, ftl, cache = self._cache(cache_sectors=64)
        ftl.write(0, b"f" * (4 * SS))    # on flash, behind the cache
        cache.write(1, b"c" * SS)        # staged over the middle
        assert cache.read(0, 4) == (b"f" * SS + b"c" * SS + b"f" * (2 * SS))
        assert cache.stats.read_hits == 1
        assert cache.stats.read_misses == 3

    def test_absorbs_rewrites_before_flash(self):
        __, ftl, cache = self._cache(cache_sectors=64)
        for round_ in range(10):
            cache.write(5, bytes([round_]) * SS)
        cache.flush()
        assert cache.stats.absorbed_rewrites == 9
        assert cache.stats.host_sectors_written == 10
        assert cache.stats.flash_sectors_written == 1
        assert cache.stats.write_reduction == 0.9
        assert cache.read(5, 1) == bytes([9]) * SS

    def test_flush_makes_data_visible_to_bare_ftl(self):
        device, ftl, cache = self._cache(cache_sectors=64)
        cache.write(3, b"x" * SS)
        cache.flush()
        device.sim.run()
        assert ftl.read(3, 1) == b"x" * SS

    def test_eviction_bounds_the_stage(self):
        __, ftl, cache = self._cache(cache_sectors=8,
                                     evict_to_fraction=0.5)
        for lba in range(32):
            cache.write(lba, bytes([lba]) * SS)
        assert cache.stats.evictions >= 1
        assert len(cache._dirty) <= 8
        for lba in range(32):
            assert cache.read(lba, 1) == bytes([lba]) * SS

    def test_eviction_coalesces_contiguous_runs(self):
        __, ftl, cache = self._cache(cache_sectors=64)
        for lba in range(24):
            cache.write(lba, bytes([lba]) * SS)
        writes_before = ftl.stats.writes
        cache.flush()
        # 24 contiguous staged sectors -> one FTL transaction.
        assert ftl.stats.writes == writes_before + 1

    def test_trim_drops_staged_sectors(self):
        device, ftl, cache = self._cache(cache_sectors=64)
        cache.write(7, b"y" * SS)
        cache.trim(7, 1)
        cache.flush()
        device.sim.run()
        assert cache.stats.flash_sectors_written == 0
        assert ftl.read(7, 1) == b"\x00" * SS

    def test_rejects_partial_sectors(self):
        __, ftl, cache = self._cache()
        with pytest.raises(ReproError):
            cache.write(0, b"short")
        with pytest.raises(ReproError):
            cache.write(0, b"")


class TestStackSpecWiring:
    def test_unknown_policy_names_rejected_with_menu(self):
        with pytest.raises(ReproError) as excinfo:
            StackSpec(ftl="oxblock", gc_policy="fifo").validate()
        message = str(excinfo.value)
        assert "gc_policy" in message and "cost_benefit" in message
        with pytest.raises(ReproError) as excinfo:
            StackSpec(ftl="oxblock", placement_policy="fifo").validate()
        message = str(excinfo.value)
        assert "placement_policy" in message and "hotcold" in message

    def test_policies_require_oxblock(self):
        with pytest.raises(ReproError):
            StackSpec(ftl="lightlsm", gc_policy="greedy").validate()
        with pytest.raises(ReproError):
            StackSpec(ftl="zns", placement_policy="striped").validate()
        with pytest.raises(ReproError):
            StackSpec(ftl="eleos", host="wlfc").validate()

    def test_spec_round_trips_policy_fields(self):
        spec = StackSpec(ftl="oxblock", gc_policy="cost_benefit",
                         placement_policy="hotcold", host="wlfc",
                         wlfc={"cache_sectors": 128})
        clone = StackSpec.from_dict(spec.to_dict())
        assert clone.gc_policy == "cost_benefit"
        assert clone.placement_policy == "hotcold"
        assert clone.wlfc == {"cache_sectors": 128}

    def test_build_wires_gc_policy(self):
        stack = build_stack(StackSpec(
            ftl="oxblock", gc_policy="cost_benefit", host="none"))
        assert stack.ftl.gc.victim_policy.name == "cost_benefit"

    def test_build_wires_wlfc_host(self):
        stack = build_stack(StackSpec(
            ftl="oxblock", host="wlfc", wlfc={"cache_sectors": 32}))
        assert stack.wlfc is not None
        assert stack.wlfc.config.cache_sectors == 32
        assert stack.wlfc.ftl is stack.ftl

    def test_runner_drives_wlfc_and_reports_stats(self):
        metrics = run_spec(StackSpec(
            ftl="oxblock", host="wlfc", wlfc={"cache_sectors": 64},
            workload={"kind": "raw_fill_read", "fill_ops": 20,
                      "read_ops": 30}))
        assert metrics["wlfc_host_sectors"] > 0
        assert metrics["wlfc_flash_sectors"] <= metrics["wlfc_host_sectors"]
        assert "wlfc_write_reduction" in metrics

    def test_ftl_config_override_beats_spec_passthrough(self):
        stack = build_stack(StackSpec(
            ftl="oxblock", gc_policy="default",
            ftl_config={"gc_policy": "age_partitioned"}, host="none"))
        assert stack.ftl.gc.victim_policy.name == "age_partitioned"


class TestObservability:
    def _gc_heavy_stack(self):
        spec = StackSpec(
            name="obs_gc",
            geometry={"num_groups": 2, "pus_per_group": 2,
                      "chunks_per_pu": 8, "pages_per_block": 6},
            ftl="oxblock", host="none", obs=True,
            ftl_config={"wal_chunk_count": 2, "ckpt_chunks_per_slot": 1,
                        "gc_low_watermark": 6, "gc_high_watermark": 12})
        return build_stack(spec)

    def _drive_uniform_overwrites(self, stack, ops=150):
        """Half-fill, then uniform unit overwrites: victims keep some
        live sectors, so GC actually relocates (WAF > 1)."""
        ftl = stack.ftl
        geometry = stack.device.geometry
        unit = geometry.ws_min
        span_units = (ftl.provisioner.free_chunks()
                      * geometry.sectors_per_chunk) // (2 * unit)
        payload = bytes(unit * SS)
        for index in range(span_units):
            ftl.write(index * unit, payload)
        rng = random.Random(3)
        for __ in range(ops):
            ftl.write(rng.randrange(span_units) * unit, payload)
        ftl.flush()
        stack.sim.run()

    def test_waf_gauge_tracks_relocation_accounting(self):
        stack = self._gc_heavy_stack()
        ftl = stack.ftl
        self._drive_uniform_overwrites(stack)
        assert ftl.gc.stats.sectors_relocated > 0
        assert ftl.gc.stats.chunks_recycled > 0
        gauge = stack.obs.metrics.gauge("ftl.gc.waf")
        host = ftl.stats.sectors_written
        expected = (host + ftl.gc.stats.sectors_relocated) / host
        # The gauge is refreshed after each relocation, so it lags any
        # host writes issued after the last collection — close, not
        # bit-equal, to the end-of-run recomputation.
        assert gauge.value == pytest.approx(expected, rel=0.05)
        assert gauge.value > 1.0

    def test_gc_pressure_counters_registered(self):
        stack = self._gc_heavy_stack()
        ftl = stack.ftl
        self._drive_uniform_overwrites(stack)
        flat = stack.obs.metrics.flat()
        # The skip/deferral counters mirror GcStats whenever they fire;
        # the stats themselves are authoritative when they stay zero.
        stats = ftl.gc.stats
        if stats.skips_no_space:
            assert flat["ftl.gc.skips_no_space"] == stats.skips_no_space
        if stats.deferrals_unsafe:
            assert flat["ftl.gc.deferrals_unsafe"] == stats.deferrals_unsafe
        assert stats.skips_no_space >= 0
        assert stats.deferrals_unsafe >= 0

    def test_foreground_stall_histogram_records_sim_time(self):
        # gc_low_watermark=0 keeps the background daemon dormant, so a
        # hammering workload must reclaim space on the write path — and
        # every stall sample is simulated seconds (deterministic across
        # machines).
        spec = StackSpec(
            name="obs_stall",
            geometry={"num_groups": 2, "pus_per_group": 2,
                      "chunks_per_pu": 8, "pages_per_block": 6},
            ftl="oxblock", host="none", obs=True,
            ftl_config={"wal_chunk_count": 2, "ckpt_chunks_per_slot": 1,
                        "gc_low_watermark": 0})
        stack = build_stack(spec)
        ftl = stack.ftl
        for round_ in range(150):
            for lba in range(8):
                ftl.write(lba, bytes([round_ % 251]) * SS)
        ftl.flush()
        stack.sim.run()
        stall = stack.obs.metrics.histogram("ftl.gc.stall_s")
        assert stall.count > 0
        assert stall.total() > 0.0
