"""Unit tests for the LSM building blocks: bloom filters, memtable,
SSTable format, rate limiter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.lsm import BloomFilter, MemTable, TOMBSTONE
from repro.qos.tokenbucket import TokenBucket
from repro.lsm.bloom import build_from_hashes, hash_key
from repro.lsm.sstable import (
    SSTableBuilder,
    SSTableMeta,
    build_sstable,
    encode_entry,
    iter_block,
    search_block,
)
from repro.sim import Simulator


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter.for_keys(1000)
        keys = [f"key-{i}".encode() for i in range(1000)]
        bloom.add_all(keys)
        assert all(bloom.may_contain(key) for key in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter.for_keys(2000, bits_per_key=10)
        bloom.add_all(f"in-{i}".encode() for i in range(2000))
        false_positives = sum(
            bloom.may_contain(f"out-{i}".encode()) for i in range(2000))
        # ~1 % expected at 10 bits/key; allow generous slack.
        assert false_positives < 2000 * 0.05

    def test_serialize_roundtrip(self):
        bloom = BloomFilter.for_keys(100)
        bloom.add_all(f"k{i}".encode() for i in range(100))
        restored = BloomFilter.deserialize(bloom.serialize())
        assert restored.num_bits == bloom.num_bits
        assert restored.num_hashes == bloom.num_hashes
        assert all(restored.may_contain(f"k{i}".encode())
                   for i in range(100))

    def test_build_from_hashes_sized_by_actual_count(self):
        hashes = [hash_key(f"k{i}".encode()) for i in range(50)]
        bloom = build_from_hashes(hashes)
        assert bloom.num_bits == 500
        assert all(bloom.may_contain(f"k{i}".encode()) for i in range(50))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=4, num_hashes=2)
        with pytest.raises(ValueError):
            BloomFilter(num_bits=64, num_hashes=0)


@given(st.sets(st.binary(min_size=1, max_size=32), min_size=1, max_size=200))
@settings(max_examples=50)
def test_bloom_no_false_negatives_property(keys):
    bloom = BloomFilter.for_keys(len(keys))
    bloom.add_all(keys)
    assert all(bloom.may_contain(key) for key in keys)


class TestMemTable:
    def test_put_get(self):
        table = MemTable()
        table.put(b"a", b"1")
        assert table.get(b"a") == b"1"
        assert table.get(b"b") is None

    def test_delete_leaves_tombstone(self):
        table = MemTable()
        table.put(b"a", b"1")
        table.delete(b"a")
        assert table.get(b"a") is TOMBSTONE

    def test_items_sorted(self):
        table = MemTable()
        for key in (b"c", b"a", b"b"):
            table.put(key, key)
        assert [k for k, __ in table.items_sorted()] == [b"a", b"b", b"c"]

    def test_arena_accounting_counts_overwrites(self):
        """RocksDB arena semantics: overwriting a key still consumes
        memtable space (drives the N-client flush pressure of Figure 5)."""
        table = MemTable()
        table.put(b"k", b"v" * 100)
        size_once = table.approximate_bytes
        table.put(b"k", b"v" * 100)
        assert table.approximate_bytes == 2 * size_once
        assert len(table) == 1


class TestSSTableFormat:
    def test_block_roundtrip(self):
        entries = [(f"k{i:03d}".encode(), f"v{i}".encode())
                   for i in range(10)]
        block = b"".join(encode_entry(k, v) for k, v in entries)
        block = block.ljust(1024, b"\x00")
        assert list(iter_block(block)) == entries

    def test_tombstone_roundtrip(self):
        block = encode_entry(b"dead", TOMBSTONE).ljust(256, b"\x00")
        [(key, value)] = list(iter_block(block))
        assert key == b"dead"
        assert value is TOMBSTONE

    def test_search_block(self):
        entries = [(f"k{i:03d}".encode(), str(i).encode())
                   for i in range(0, 20, 2)]
        block = b"".join(encode_entry(k, v) for k, v in entries)
        assert search_block(block, b"k004") == b"4"
        assert search_block(block, b"k005") is None

    def test_builder_emits_fixed_size_blocks(self):
        builder = SSTableBuilder(1, 1, block_size=256)
        blocks = []
        for i in range(50):
            block = builder.add(f"key-{i:04d}".encode(), b"x" * 20)
            if block:
                blocks.append(block)
        final, meta = builder.finish()
        if final:
            blocks.append(final)
        assert all(len(b) == 256 for b in blocks)
        assert meta.num_blocks == len(blocks)
        assert meta.entry_count == 50
        assert len(meta.first_keys) == len(blocks)

    def test_builder_rejects_out_of_order_keys(self):
        builder = SSTableBuilder(1, 1, block_size=256)
        builder.add(b"b", b"")
        with pytest.raises(ReproError):
            builder.add(b"a", b"")
        with pytest.raises(ReproError):
            builder.add(b"b", b"")   # duplicates rejected too

    def test_builder_rejects_oversized_entry(self):
        builder = SSTableBuilder(1, 1, block_size=128)
        with pytest.raises(ReproError):
            builder.add(b"k", b"v" * 256)

    def test_meta_serialize_roundtrip(self):
        data = build_sstable(7, 7, 512, iter(
            (f"k{i:04d}".encode(), b"val") for i in range(100)))
        blob = data.meta.serialize()
        meta = SSTableMeta.deserialize(blob)
        assert meta.sstable_id == 7
        assert meta.entry_count == 100
        assert meta.num_blocks == data.meta.num_blocks
        assert meta.first_keys == data.meta.first_keys
        assert meta.last_key == data.meta.last_key
        assert meta.locate(b"k0042") == data.meta.locate(b"k0042")

    def test_meta_corruption_detected(self):
        data = build_sstable(7, 7, 512,
                             iter([(b"a", b"1")]))
        blob = bytearray(data.meta.serialize())
        blob[-2] ^= 0xFF   # clobber the magic
        with pytest.raises(ReproError):
            SSTableMeta.deserialize(bytes(blob))

    def test_locate_uses_bloom(self):
        data = build_sstable(1, 1, 512, iter(
            (f"k{i:04d}".encode(), b"v") for i in range(100)))
        assert data.meta.locate(b"k0050") is not None
        # A key inside the range but absent is (almost surely) filtered.
        misses = sum(data.meta.locate(f"k{i:04d}x".encode()) is not None
                     for i in range(99))
        assert misses < 10

    def test_sstable_data_get(self):
        data = build_sstable(1, 1, 512, iter(
            (f"k{i:04d}".encode(), str(i).encode()) for i in range(200)))
        assert data.get(b"k0123") == b"123"
        assert data.get(b"nope") is None
        assert len(list(data.items())) == 200


@given(st.dictionaries(st.binary(min_size=1, max_size=24),
                       st.binary(max_size=64), min_size=1, max_size=200))
@settings(max_examples=50)
def test_sstable_roundtrip_property(mapping):
    """Property: build from any sorted mapping, read every key back."""
    items = sorted(mapping.items())
    data = build_sstable(1, 1, block_size=512, items=iter(items))
    assert list(data.items()) == items
    for key, value in items:
        assert data.get(key) == value


class TestRateLimiter:
    """The LSM throttle is the qos TokenBucket, imported directly."""
    def test_unlimited_never_waits(self):
        sim = Simulator()
        limiter = TokenBucket(sim, None)

        def proc():
            yield from limiter.acquire_proc(10**9)
            return sim.now

        assert sim.run_until(sim.spawn(proc())) == 0.0

    def test_rate_enforced(self):
        sim = Simulator()
        limiter = TokenBucket(sim, rate_bytes_per_sec=1000, burst_bytes=100)

        def proc():
            yield from limiter.acquire_proc(100)    # burst credit: free
            yield from limiter.acquire_proc(1000)   # must wait ~1 s
            return sim.now

        finished = sim.run_until(sim.spawn(proc()))
        assert finished == pytest.approx(1.0, rel=0.05)

    def test_concurrent_acquirers_share_rate(self):
        sim = Simulator()
        limiter = TokenBucket(sim, rate_bytes_per_sec=1000, burst_bytes=1)
        done = []

        def proc(tag):
            yield from limiter.acquire_proc(500)
            done.append((tag, sim.now))

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        # 1000 bytes at 1000 B/s: both done by ~1s, serialized fairly.
        assert done[-1][1] == pytest.approx(1.0, rel=0.05)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(Simulator(), rate_bytes_per_sec=0)
