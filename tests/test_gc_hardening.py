"""GC hardening regressions from the fault-injection PR: pad-sector OOB,
out-of-space degradation, the per-group GC headroom reservation, and the
write-path unwind when the WAL ring fills."""

import pytest

from repro.errors import FTLError, OutOfSpaceError
from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, OpenChannelSSD, Ppa
from repro.ox import BlockConfig, MediaManager, OXBlock
from repro.ox.ftl.metadata import FtlChunkState
from repro.ox.ftl.serial import NO_PPA

SS = 4096


def make_stack(groups=2, pus=2, chunks=8, pages=6, config=None):
    geometry = DeviceGeometry(
        num_groups=groups, pus_per_group=pus,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=pages))
    device = OpenChannelSSD(geometry=geometry)
    media = MediaManager(device)
    config = config or BlockConfig(wal_chunk_count=2, ckpt_chunks_per_slot=1)
    return device, media, OXBlock.format(media, config), config


def run(media, gen):
    return media.sim.run_until(media.sim.spawn(gen))


class TestRelocationPads:
    def test_pad_sectors_carry_no_ppa_oob(self):
        """GC pads relocations to whole write units with dead copies;
        their destination OOB must be NO_PPA or a later GC scan of the
        destination chunk would treat the filler as live user data."""
        config = BlockConfig(wal_chunk_count=2, ckpt_chunks_per_slot=1,
                             gc_enabled=False)
        device, media, ftl, __ = make_stack(config=config)
        span = media.geometry.sectors_per_chunk   # one chunk's worth
        for lba in range(span):
            ftl.write(lba, bytes([lba % 251]) * SS)
        ftl.flush()
        for lba in range(1, span):   # leave lba 0's copy live
            ftl.write(lba, bytes([(lba + 1) % 251]) * SS)
        ftl.flush()

        victim_key = media.geometry.delinearize(
            ftl.page_map.lookup(0)).chunk_key()
        victim = ftl.chunk_table.get(victim_key)
        assert victim.state is FtlChunkState.FULL
        live_before = victim.valid_count
        assert 0 < live_before < media.geometry.ws_min

        assert run(media, ftl.gc._relocate_and_reset_proc(victim))

        new_ppa = media.geometry.delinearize(ftl.page_map.lookup(0))
        assert new_ppa.chunk_key() != victim_key
        dst_key = new_ppa.chunk_key()
        written = media.chunk_info(Ppa(*dst_key, 0)).write_pointer
        assert written == media.geometry.ws_min   # padded to one unit
        completion = run(media, media.read_proc(
            [Ppa(*dst_key, s) for s in range(written)]))
        pads = [oob for oob in completion.oob if oob == NO_PPA]
        owned = [oob for oob in completion.oob if oob != NO_PPA]
        assert len(pads) == written - live_before
        assert 0 in owned

    def test_gc_scan_of_padded_destination_sees_pads_as_unowned(self):
        config = BlockConfig(wal_chunk_count=2, ckpt_chunks_per_slot=1,
                             gc_enabled=False)
        device, media, ftl, __ = make_stack(config=config)
        span = media.geometry.sectors_per_chunk
        for lba in range(span):
            ftl.write(lba, bytes([lba % 251]) * SS)
        ftl.flush()
        for lba in range(1, span):
            ftl.write(lba, bytes([(lba + 1) % 251]) * SS)
        ftl.flush()
        victim = ftl.chunk_table.get(
            media.geometry.delinearize(ftl.page_map.lookup(0)).chunk_key())
        assert run(media, ftl.gc._relocate_and_reset_proc(victim))

        dst_key = media.geometry.delinearize(
            ftl.page_map.lookup(0)).chunk_key()
        written = media.chunk_info(Ppa(*dst_key, 0)).write_pointer
        live, unsafe = run(
            media, ftl.gc._find_live_sectors_proc(dst_key, written))
        assert unsafe == 0
        assert [lba for __, lba in live] == [0]
        assert all(lba != NO_PPA for __, lba in live)


class TestOutOfSpace:
    def fill_until_full(self, ftl):
        lba = 0
        with pytest.raises(OutOfSpaceError):
            while lba < 10_000:
                ftl.write(lba, bytes([lba % 251]) * SS)
                lba += 1
        return lba

    def test_filling_the_device_raises_instead_of_wedging(self):
        device, media, ftl, __ = make_stack()
        written = self.fill_until_full(ftl)
        assert written > media.geometry.sectors_per_chunk

    def test_ftl_survives_out_of_space(self):
        """Running out of space is an error return, not a crash: reads
        still serve acked data and trims free enough space to write
        again."""
        device, media, ftl, __ = make_stack()
        written = self.fill_until_full(ftl)
        for lba in (0, written // 2, written - 1):
            assert ftl.read(lba, 1) == bytes([lba % 251]) * SS
        span = media.geometry.sectors_per_chunk * 4
        for lba in range(span):
            ftl.trim(lba)
        for lba in range(media.geometry.ws_min):
            ftl.write(lba, b"\x7f" * SS)
        assert ftl.read(0, 1) == b"\x7f" * SS

    def test_out_of_space_write_is_atomic(self):
        """The write that hits OutOfSpace must not leave any of its own
        sectors mapped, and must not disturb its neighbours."""
        device, media, ftl, __ = make_stack()
        written = self.fill_until_full(ftl)
        big = bytes(range(256)) * (SS // 256) * 8
        with pytest.raises(OutOfSpaceError):
            ftl.write(written, big)
        assert ftl.read(written, 8) == b"\x00" * (8 * SS)
        assert ftl.read(written - 1, 1) == bytes([(written - 1) % 251]) * SS


class TestGcHeadroom:
    def test_user_exhaustion_leaves_headroom_per_group(self):
        device, media, ftl, config = make_stack()
        provisioner = ftl.provisioner
        with pytest.raises(OutOfSpaceError):
            while True:
                provisioner.allocate_unit("user")
        for group in range(media.geometry.num_groups):
            assert (provisioner.units_available("gc", group=group)
                    >= config.gc_headroom_chunks)
            provisioner.allocate_unit("gc", group=group)

    def test_gc_stream_ignores_headroom(self):
        device, media, ftl, config = make_stack()
        provisioner = ftl.provisioner
        with pytest.raises(OutOfSpaceError):
            while True:
                provisioner.allocate_unit("gc", group=0)
        # The GC stream may consume the reserve down to nothing.
        assert provisioner.units_available("gc", group=0) == 0


class TestWritePathUnwind:
    def test_wal_exhaustion_unwinds_the_transaction(self):
        """With pressure checkpoints disabled, the ring eventually fills;
        the failing write must surface FTLError and leave the previous
        mapping intact — no dangling half-transaction."""
        config = BlockConfig(wal_chunk_count=1, ckpt_chunks_per_slot=1,
                             gc_enabled=False, wal_pressure_threshold=2.0)
        device, media, ftl, __ = make_stack(config=config)
        last_good = None
        with pytest.raises(FTLError, match="ring exhausted"):
            for i in range(10_000):
                ftl.write(0, bytes([i % 251]) * SS)
                last_good = i
        assert last_good is not None
        assert ftl.read(0, 1) == bytes([last_good % 251]) * SS
