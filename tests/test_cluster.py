"""The cluster layer: spec, routers, rebalancer, runner, merge.

The load-bearing suites:

* **Determinism** — the same ``ClusterSpec`` merges to bit-identical
  metrics for the serial runner, one worker process, and four worker
  processes (the cluster's reproducibility contract).
* **Router properties** — every key maps to exactly R distinct live
  replicas; membership changes move only keys whose replica set
  involves the added/removed shard (movement minimality).
* **Failover** — with R=2 and a power cut killing one shard, every
  read is still served, content-verified, by the surviving replica.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    ClusterSpec, ClusterWorkloadSpec, HashRing, RangeRouter, Rebalancer,
    assert_minimal, build_router, merge_shard_results, payload_for,
    run_cluster, shard_prefix)
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry

#: A tiny shard stack every cluster test reuses (perf_smoke geometry).
SHARD = {"ftl": "oxblock",
         "geometry": {"num_groups": 2, "pus_per_group": 2,
                      "chunks_per_pu": 16, "pages_per_block": 6},
         "ftl_config": {"wal_chunk_count": 4, "ckpt_chunks_per_slot": 2}}


def tiny_cluster(**overrides) -> ClusterSpec:
    data = {"name": "test-cluster", "num_shards": 2, "template": SHARD,
            "workload": {"num_keys": 8, "read_ops": 24}}
    data.update(overrides)
    return ClusterSpec.from_dict(data)


# -- spec ------------------------------------------------------------------


def test_cluster_spec_round_trips_through_dict():
    spec = tiny_cluster(replication=2, router="range", vnodes=16)
    clone = ClusterSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert clone.to_dict() == spec.to_dict()


def test_cluster_spec_rejects_unknown_fields():
    with pytest.raises(ReproError, match="unknown field"):
        ClusterSpec.from_dict({"shard_count": 3})


def test_replication_cannot_exceed_shards():
    with pytest.raises(ReproError, match="replication"):
        tiny_cluster(num_shards=2, replication=3)


def test_unknown_router_raises():
    with pytest.raises(ReproError, match="router"):
        tiny_cluster(router="rendezvous")


def test_shards_must_be_raw_block_stacks():
    with pytest.raises(ReproError, match="raw block API"):
        tiny_cluster(template={"ftl": "lightlsm"})


def test_template_mode_derives_distinct_shard_seeds():
    shards = tiny_cluster(num_shards=4).shard_specs()
    assert [s.name for s in shards] == [
        f"test-cluster.shard{i}" for i in range(4)]
    seeds = [s.seed for s in shards]
    assert len(set(seeds)) == 4
    # Deriving again is stable (routing and replay depend on it).
    assert [s.seed for s in tiny_cluster(num_shards=4).shard_specs()] == seeds


def test_explicit_shards_set_num_shards_and_keep_seeds():
    spec = tiny_cluster(shards=[dict(SHARD, seed=3), dict(SHARD, seed=9),
                                dict(SHARD, seed=27)])
    assert spec.num_shards == 3
    assert [s.seed for s in spec.shard_specs()] == [3, 9, 27]


# -- routers ---------------------------------------------------------------

KEYS = range(300)


@pytest.mark.parametrize("kind", ["hash", "range"])
@pytest.mark.parametrize("replication", [1, 2, 3])
def test_every_key_maps_to_exactly_r_distinct_live_replicas(
        kind, replication):
    router = build_router(kind, range(5), replication=replication,
                          vnodes=32)
    for key in KEYS:
        replicas = router.replicas(key)
        assert len(replicas) == replication
        assert len(set(replicas)) == replication
        assert set(replicas) <= router.shards
        # Routing is a pure function of the key.
        assert router.replicas(key) == replicas


@pytest.mark.parametrize("kind", ["hash", "range"])
def test_all_shards_receive_some_primaries(kind):
    router = build_router(kind, range(4), replication=1, vnodes=64)
    primaries = {router.primary(key) for key in KEYS}
    assert primaries == set(range(4))


@pytest.mark.parametrize("kind", ["hash", "range"])
def test_add_shard_moves_only_keys_gaining_it(kind):
    router = build_router(kind, range(4), replication=2, vnodes=32)
    before = {key: router.replicas(key) for key in KEYS}
    plan = Rebalancer(router).add_shard(4, KEYS)
    after = {key: router.replicas(key) for key in KEYS}
    assert_minimal(plan, before, after)
    assert plan.moved_keys, "a new shard must take some keys"
    # Far less than everything moves: the new shard owns ~1/5 of the
    # space, so well under half the keys may see their set change.
    assert plan.moved_fraction() < 0.5
    for key in KEYS:
        assert len(set(after[key])) == 2


@pytest.mark.parametrize("kind", ["hash", "range"])
def test_remove_shard_moves_only_its_former_keys(kind):
    router = build_router(kind, range(4), replication=2, vnodes=32)
    before = {key: router.replicas(key) for key in KEYS}
    plan = Rebalancer(router).remove_shard(2, KEYS)
    after = {key: router.replicas(key) for key in KEYS}
    assert_minimal(plan, before, after)
    for key in KEYS:
        replicas = after[key]
        assert 2 not in replicas
        assert len(set(replicas)) == 2
    # Re-replication never sources from the shard being retired when a
    # surviving replica exists (it always does at R=2).
    assert all(move.source != 2 for move in plan.moves)


def test_duplicate_or_unknown_membership_changes_raise():
    ring = HashRing(range(3), vnodes=8)
    with pytest.raises(ReproError):
        ring.add_shard(1)
    with pytest.raises(ReproError):
        ring.remove_shard(7)
    router = RangeRouter(range(2))
    with pytest.raises(ReproError):
        router.remove_shard(0), router.remove_shard(1)


def test_replication_beyond_live_shards_raises():
    ring = HashRing(range(2), vnodes=8, replication=2)
    ring.remove_shard(1)
    with pytest.raises(ReproError, match="replication"):
        ring.replicas(11)


def test_range_router_stays_anchored_after_first_shard_leaves():
    router = RangeRouter(range(3), replication=1)
    before = {key: router.replicas(key) for key in KEYS}
    plan = Rebalancer(router).remove_shard(0, KEYS)
    after = {key: router.replicas(key) for key in KEYS}
    assert_minimal(plan, before, after)
    assert {router.primary(key) for key in KEYS} == {1, 2}


# -- registry merge --------------------------------------------------------


def test_registry_merge_counters_add_and_histograms_union():
    left, right, merged = (MetricsRegistry() for __ in range(3))
    left.counter("ops").increment(3)
    right.counter("ops").increment(4)
    left.histogram("lat").extend([1.0, 5.0])
    right.histogram("lat").extend([2.0, 4.0, 3.0])
    merged.merge(left.dump())
    merged.merge(right.dump())
    assert merged.counter("ops").value == 7
    assert merged.histogram("lat").count == 5
    # Percentiles come from the union of raw samples, exactly as one
    # registry recording everything would report.
    reference = MetricsRegistry()
    reference.histogram("lat").extend([1.0, 5.0, 2.0, 4.0, 3.0])
    assert (merged.histogram("lat").summary()
            == reference.histogram("lat").summary())


def test_registry_merge_prefix_namespaces_sources():
    source = MetricsRegistry()
    source.counter("reads").increment(2)
    source.gauge("depth").set(9)
    merged = MetricsRegistry()
    merged.merge(source.dump(), prefix="cluster.shard0.")
    merged.merge(source.dump(), prefix="cluster.shard1.")
    flat = merged.flat()
    assert flat["cluster.shard0.reads"] == 2
    assert flat["cluster.shard1.depth"] == 9


def test_registry_merge_kind_mismatch_raises():
    source = MetricsRegistry()
    source.counter("x").increment()
    merged = MetricsRegistry()
    merged.gauge("x").set(1)
    with pytest.raises(TypeError):
        merged.merge(source.dump())


def test_shard_prefix_vocabulary():
    assert shard_prefix(3, 0) == "cluster.shard3."
    assert shard_prefix(3, 2) == "cluster.shard3.retry2."


def test_merge_is_order_insensitive():
    results = [
        {"shard": 1, "round": 0, "metrics": {"a": 1}, "registry": None},
        {"shard": 0, "round": 0, "metrics": {"a": 2}, "registry": None},
        {"shard": 0, "round": 1, "metrics": {"a": 3}, "registry": None},
    ]
    assert (merge_shard_results(results)
            == merge_shard_results(list(reversed(results))))


# -- runner ----------------------------------------------------------------


def test_payload_is_deterministic_and_sized():
    assert payload_for(5, 4096) == payload_for(5, 4096)
    assert payload_for(5, 4096) != payload_for(6, 4096)
    assert len(payload_for(5, 1000)) == 1000


def test_serial_cluster_run_verifies_every_read():
    result = run_cluster(tiny_cluster(replication=2, workers=0))
    merged = result.merged
    assert merged["cluster.reads_verified_total"] == 24
    assert merged["cluster.read_corruptions_total"] == 0
    assert merged["cluster.reads_lost"] == 0
    assert merged["cluster.writes_attempted"] == 8 * 2
    assert merged["cluster.rounds"] == 1
    # Per-shard namespaces exist and carry the deterministic canaries.
    assert "cluster.shard0.sim_seconds" in merged
    assert "cluster.shard1.events_processed" in merged
    # Wall facts stay out of the deterministic view.
    assert not set(merged) & {"wall_seconds", "ops_per_sec"}
    assert result.wall["workers"] == 0


def test_serial_cluster_is_self_deterministic():
    spec = tiny_cluster(replication=2, router="range")
    assert (run_cluster(spec, workers=0).merged
            == run_cluster(spec, workers=0).merged)


def test_obs_registries_merge_under_shard_namespaces():
    spec = tiny_cluster(template=dict(SHARD, obs=True))
    merged = run_cluster(spec, workers=0).merged
    assert "cluster.shard0.ftl.read.latency_s.p99" in merged
    assert "cluster.shard1.nand.program.count" in merged


def test_cluster_determinism_serial_vs_one_vs_four_workers():
    """The acceptance-criteria shape: a 4-shard cluster merges to
    bit-identical metrics for serial, 1-worker and 4-worker runs."""
    spec = tiny_cluster(num_shards=4, replication=2,
                        template=dict(SHARD, obs=True),
                        workload={"num_keys": 12, "read_ops": 30})
    serial = run_cluster(spec, workers=0).merged
    one = run_cluster(spec, workers=1).merged
    four = run_cluster(spec, workers=4).merged
    assert serial == one
    assert serial == four


def test_failover_reads_survive_a_power_cut_on_one_shard():
    """R=2, one shard loses power mid-run: every read is still served
    and content-verified by the surviving replica; nothing is lost."""
    faulty = dict(SHARD, faults={"power_cut_at_op": 40})
    spec = tiny_cluster(shards=[SHARD, faulty], replication=2,
                        workload={"num_keys": 12, "read_ops": 60})
    result = run_cluster(spec, workers=0)
    merged = result.merged
    assert merged["cluster.shard1.power_cuts"] == 1
    assert result.rounds[0][1]["dead"] is True
    assert merged["cluster.reads_failed_over"] > 0
    assert merged["cluster.reads_lost"] == 0
    assert merged["cluster.read_corruptions_total"] == 0
    assert (merged["cluster.reads_verified_total"]
            == merged["cluster.reads_attempted"])
    assert merged["cluster.rounds"] == 2


def test_unreplicated_cluster_loses_reads_when_its_shard_dies():
    faulty = dict(SHARD, faults={"power_cut_at_op": 1})
    spec = tiny_cluster(shards=[faulty], replication=1,
                        workload={"num_keys": 4, "read_ops": 10})
    result = run_cluster(spec, workers=0)
    assert result.merged["cluster.reads_lost"] == 10
    assert result.merged["cluster.reads_verified_total"] == 0


def test_module_runner_executes_a_json_cluster_spec(tmp_path, capsys):
    from repro.cluster.__main__ import main
    spec_path = tmp_path / "cluster.json"
    spec_path.write_text(json.dumps(tiny_cluster().to_dict()))
    assert main([str(spec_path), "--name", "cluster-main-test"]) == 0
    out = capsys.readouterr().out
    assert "cluster.reads_verified_total" in out


def test_module_runner_rejects_a_bad_spec(tmp_path, capsys):
    from repro.cluster.__main__ import main
    spec_path = tmp_path / "cluster.json"
    spec_path.write_text(json.dumps({"num_shards": 0}))
    assert main([str(spec_path)]) == 2
    assert "num_shards" in capsys.readouterr().err


def test_workload_spec_bounds():
    with pytest.raises(ReproError, match="num_keys"):
        ClusterWorkloadSpec(num_keys=0).validate()
    with pytest.raises(ReproError, match="value_units"):
        ClusterWorkloadSpec(value_units=0).validate()
