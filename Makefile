PYTHON ?= python

.PHONY: check test bench-perf bench-perf-smoke

# Tier-1 tests + perf smoke with the >30% ops/sec regression gate.
check:
	sh scripts/check.sh

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Full macro perf run; appends an entry to BENCH_perf.json.
bench-perf:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_trajectory.py

bench-perf-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_perf_trajectory.py --smoke --no-append
