#!/usr/bin/env python3
"""A key-value store on LightLSM: RocksDB-lite over the Open-Channel SSD.

Demonstrates the paper's central application-specific FTL: SSTables map
straight onto chunks, placement is horizontal (striped over every PU) or
vertical (confined to one group, Figure 4), deletion is pure chunk
erasing, and recovery needs no MANIFEST — the media is self-describing.

Run:  python examples/kv_store_lightlsm.py
"""

from repro.lsm import DB, DBConfig, LightLSMEnv
from repro.ox import MediaManager
from repro.stack import StackSpec, build_stack
from repro.units import KIB, MIB, fmt_bytes


def build(placement: str):
    stack = build_stack(StackSpec(
        name="kv-store",
        geometry={"num_groups": 8, "pus_per_group": 4,
                  "chunks_per_pu": 80, "pages_per_block": 6},
        ftl="lightlsm", placement=placement,
        db={"block_size": 96 * KIB, "write_buffer_bytes": 1 * MIB}))
    return stack.device, stack.env, stack.db


def key(i: int) -> bytes:
    return f"user:{i:010d}".encode()


def main() -> None:
    for placement in ("horizontal", "vertical"):
        device, env, db = build(placement)
        print(f"\n=== {placement} placement ===")
        print(f"SSTable = {env.chunks_per_sstable} chunks "
              f"(+1 meta) = {fmt_bytes(env.max_table_bytes)} of data; "
              f"block size must be a multiple of "
              f"{fmt_bytes(env.min_block_size)}")

        # Load a few thousand users, then update a subset.
        for i in range(3000):
            db.put(key(i), f"profile-{i}".encode().ljust(512, b"."))
        for i in range(0, 3000, 3):
            db.put(key(i), f"updated-{i}".encode().ljust(512, b"."))
        db.flush()
        db.wait_idle()

        print(f"levels (tables per level): {db.level_sizes()}")
        print(f"get user 42      -> {db.get(key(42))[:10]!r}")
        print(f"get user 43      -> {db.get(key(43))[:10]!r}")
        print(f"scan first 5 keys:")
        shown = []
        db.scan(limit=5, on_entry=lambda k, v: shown.append(k))
        for k in shown:
            print(f"   {k.decode()}")
        print(f"flushes={db.stats.flushes} compactions={db.stats.compactions} "
              f"tables flushed={env.stats.tables_flushed} "
              f"deleted={env.stats.tables_deleted} "
              f"(chunk resets only: {env.stats.chunk_resets})")

        # MANIFEST-less recovery: rebuild a fresh env + DB from the media.
        db.close()
        media2 = MediaManager(device)
        env2 = LightLSMEnv(media2, env.placement)
        db2 = DB.open(env2, DBConfig(block_size=96 * KIB,
                                     write_buffer_bytes=1 * MIB),
                      device.sim)
        print(f"reopened without MANIFEST: user 42 -> "
              f"{db2.get(key(42))[:10]!r}, levels {db2.level_sizes()}")


if __name__ == "__main__":
    main()
