#!/usr/bin/env python3
"""Porting an append-only application to Zoned Namespaces via OX-ZNS.

§2.3: ZNS "shields the host from the complexities of the physical address
space" — the host sees zones with write pointers, while the FTL hides
``ws_min``, paired pages and placement.  The paper lists the ZNS target
over Open-Channel SSDs as unreleased; this example runs ours: a segmented
append log (the classic LSM/archival pattern) on zones.

Run:  python examples/zns_port.py
"""

from repro.stack import StackSpec, build_stack
from repro.units import fmt_bytes
from repro.zns import OXZns, ZoneState


class SegmentedLog:
    """A tiny append-only record log over zones: records go to the active
    zone; full zones seal; reclaimed zones reset."""

    def __init__(self, zns: OXZns):
        self.zns = zns
        self.active = 0
        self.index = []   # (record_id, lba, sectors)
        self.sector = zns.geometry.sector_size

    def append(self, record_id: int, payload: bytes) -> None:
        padded = payload.ljust(
            -(-len(payload) // self.sector) * self.sector, b"\x00")
        zone = self.zns.zone(self.active)
        if zone.remaining * self.sector < len(padded):
            self.zns.finish_zone(self.active)
            self.active += 1
        lba = self.zns.append(self.active, padded)
        self.index.append((record_id, lba, len(padded) // self.sector))

    def read(self, record_id: int) -> bytes:
        for rid, lba, sectors in self.index:
            if rid == record_id:
                return self.zns.read(lba, sectors)
        raise KeyError(record_id)


def main() -> None:
    stack = build_stack(StackSpec(
        name="zns-port",
        geometry={"num_groups": 4, "pus_per_group": 4,
                  "chunks_per_pu": 16, "pages_per_block": 12},
        ftl="zns", host="none", ftl_config={"chunks_per_zone": 4}))
    zns, geometry = stack.ftl, stack.device.geometry
    print(f"ZNS namespace: {zns.num_zones} zones of "
          f"{fmt_bytes(zns.zone_capacity * geometry.sector_size)} "
          f"over {geometry.describe()}")

    log = SegmentedLog(zns)
    print("\nappending 60 records...")
    for record_id in range(60):
        log.append(record_id, f"record {record_id}: ".encode()
                   + b"#" * (3000 + record_id * 937 % 30_000))
    states = {}
    for zone in zns.report_zones():
        states[zone.state.value] = states.get(zone.state.value, 0) + 1
    print(f"zone states: {states}")
    print(f"record 17 -> {log.read(17)[:12]!r}")
    print(f"record 59 -> {log.read(59)[:12]!r}")

    # Reclaim: seal the active zone, reset the first one.
    zns.finish_zone(log.active)
    full = [z.zone_id for z in zns.report_zones()
            if z.state is ZoneState.FULL]
    zns.reset_zone(full[0])
    print(f"\nreclaimed zone {full[0]}; "
          f"resets so far: {zns.stats.zone_resets} "
          f"(each reset = {zns.config.chunks_per_zone} chunk erases)")
    print(f"appends: {zns.stats.appends}, "
          f"sectors appended: {zns.stats.sectors_appended}, "
          f"read: {zns.stats.sectors_read}")


if __name__ == "__main__":
    main()
