#!/usr/bin/env python3
"""A tour of the SSD landscape (Figure 1) and performance contracts (§5).

Prints the paper's taxonomy grid, then runs a co-design session: declare
a performance contract, characterize two candidate Open-Channel SSDs
(a TLC drive and a QLC drive), and pick the one that complies — §5's
"evaluate which Open-Channel SSD actually complies with the performance
requirements".

Run:  python examples/landscape_tour.py
"""

from repro.contract import (
    ContractTerm,
    PerformanceContract,
    characterize_device,
)
from repro.landscape import render_figure1
from repro.nand import CellType
from repro.ocssd import OpenChannelSSD
from repro.stack import StackSpec, build_stack
from repro.units import MS, US


def build_device(cell: CellType) -> OpenChannelSSD:
    pages = 24 if cell is CellType.TLC else 16   # paired-page alignment
    return build_stack(StackSpec(
        name="landscape",
        geometry={"num_groups": 2, "pus_per_group": 2,
                  "cell": cell.name.lower(), "chunks_per_pu": 8,
                  "pages_per_block": pages},
        ftl="none")).device


def main() -> None:
    print("The SSD landscape (Figure 1):\n")
    print(render_figure1())

    print("\n\nCo-design session: choosing a drive by contract")
    contract = PerformanceContract([
        ContractTerm("read_sector_p99", 200 * US,
                     "(point reads must stay sub-200us)"),
        ContractTerm("write_unit_mean", 5 * MS,
                     "(buffered unit writes within 5ms)"),
        ContractTerm("endurance", 3_000, "(erase-cycle floor)",
                     kind="min"),
    ])
    for term in contract.terms:
        op = "<=" if term.kind == "max" else ">="
        print(f"  - {term.metric} {op} {term.bound:g} {term.description}")

    for cell in (CellType.TLC, CellType.QLC):
        device = build_device(cell)
        metrics = characterize_device(device, samples=16)
        report = contract.check(metrics)
        verdict = "COMPLIES" if report.passed else "REJECTED"
        print(f"\n{cell.name} drive: {verdict}")
        print(f"  read p99  = {metrics['read_sector_p99'] / US:8.1f} us")
        print(f"  write avg = {metrics['write_unit_mean'] / US:8.1f} us")
        print(f"  endurance = {metrics['endurance']:8.0f} cycles")
        for violation in report.violations:
            print(f"  violation: {violation}")

    print("\n'Require a performance contract, not a warranty' (§5).")


if __name__ == "__main__":
    main()
