#!/usr/bin/env python3
"""Log-structured storage with LLAMA-lite over OX-ELEOS.

The write path batches dirty pages into 8 MB LSS I/O buffers (one device
transaction each); the read path fetches single variable-sized pages —
with a mapping granularity *below* the 4 KB unit of read, the challenge
§4.2 highlights.  The host-side cleaner relocates live pages and frees
whole segments (chunk erases).

Run:  python examples/log_structured_eleos.py
"""

from repro.llama import LlamaEngine
from repro.ox import OXEleos
from repro.stack import StackSpec, build_stack
from repro.units import MIB, fmt_bytes


def main() -> None:
    stack = build_stack(StackSpec(
        name="log-structured",
        geometry={"num_groups": 4, "pus_per_group": 4,
                  "chunks_per_pu": 48, "pages_per_block": 24},
        ftl="eleos",
        ftl_config={"buffer_bytes": 2 * MIB, "wal_chunk_count": 8},
        llama={"consolidate_after": 4, "clean_live_ratio": 0.8}))
    media, ftl, engine = stack.media, stack.ftl, stack.engine
    print(f"OX-ELEOS over {stack.device.geometry.describe()}")
    print(f"LSS buffer: {fmt_bytes(ftl.config.buffer_bytes)}")

    # Variable-sized pages: a record store with per-record pages.
    print("\nwriting 200 variable-sized pages (37 B .. 20 KB)...")
    for pid in range(200):
        engine.replace(pid, f"record-{pid}:".encode()
                       + b"x" * (37 + pid * 101 % 20_000))
    segment = engine.flush()
    print(f"flushed into segment {segment} "
          f"({engine.stats.pages_flushed} pages in "
          f"{engine.stats.flushes} buffer write)")

    # Delta updates: append without rewriting the base.
    for pid in range(0, 200, 4):
        engine.update(pid, b"+delta")
    second = engine.flush()
    print(f"50 delta-updated pages moved to segment {second}; "
          f"segment {segment} is now "
          f"{engine.segment_live_ratio(segment):.0%} live")

    page = engine.read(8)
    print(f"page 8: {len(page)} bytes, ends with {page[-6:]!r}")

    cleaned = engine.clean_once()
    print(f"cleaner freed segment {cleaned} "
          f"(relocated {engine.stats.pages_relocated} live pages)")

    # Crash: OX-ELEOS guarantees buffer-level atomicity.
    media.flush()
    ftl.crash()
    recovered, report = OXEleos.recover(media, ftl.config)
    print(f"\nrecovered after crash: {report.txns_applied} buffers "
          f"replayed, {len(recovered.live_page_ids())} pages live")
    engine2 = LlamaEngine(recovered)
    page = engine2.read(8)
    print(f"page 8 after recovery: {len(page)} bytes, "
          f"ends with {page[-6:]!r}")


if __name__ == "__main__":
    main()
