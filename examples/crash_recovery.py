#!/usr/bin/env python3
"""Checkpoint intervals vs. recovery time: a miniature of Figure 3.

Runs the paper's §4.3 experiment: OX-Block absorbs random transactional
writes (up to 1 MB each); at a chosen point in time the OX process is
killed; recovery replays the WAL from the last checkpoint.  Without
checkpointing, recovery time grows with runtime; with checkpoints every
few seconds, it stays bounded.

Run:  python examples/crash_recovery.py
"""

from repro.ox import OXBlock
from repro.stack import StackSpec, build_stack
from repro.units import MIB, fmt_time
from repro.workloads import RandomWriteWorkload


def run_experiment(checkpoint_interval, fail_at: float) -> float:
    """Write until *fail_at* simulated seconds, crash, return recovery
    time."""
    # The WAL ring is sized for the whole run so the no-checkpoint
    # configuration is genuinely checkpoint-free; replay cost per mapping
    # entry models metadata reconstruction on the controller CPU.
    stack = build_stack(StackSpec(
        name="crash-recovery",
        geometry={"num_groups": 4, "pus_per_group": 4,
                  "chunks_per_pu": 96, "pages_per_block": 24},
        ftl="oxblock",
        ftl_config={"checkpoint_interval": checkpoint_interval,
                    "wal_chunk_count": 160,
                    "wal_pressure_threshold": 0.95,
                    "replay_cpu_per_record": 2e-5}))
    media, ftl = stack.media, stack.ftl
    geometry = stack.device.geometry

    workload = RandomWriteWorkload(
        lba_space=geometry.capacity_bytes // geometry.sector_size // 4,
        max_bytes=1 * MIB, seed=11)
    sim = stack.sim

    def writer():
        for op in workload.operations():
            if sim.now >= fail_at:
                return
            yield from ftl.write_proc(op.lba,
                                      op.payload(geometry.sector_size))

    process = sim.spawn(writer())
    sim.run_until(process)
    ftl.crash()
    __, report = OXBlock.recover(media, ftl.config)
    return report.duration


def main() -> None:
    fail_points = [0.5, 1.0, 1.5, 2.0]
    print(f"{'failure at':>10s} | {'no checkpoint':>14s} | "
          f"{'Ci .25s':>10s} | {'Ci .5s':>10s}")
    print("-" * 56)
    for fail_at in fail_points:
        none = run_experiment(None, fail_at)
        ci1 = run_experiment(0.25, fail_at)
        ci2 = run_experiment(0.5, fail_at)
        print(f"{fail_at:>9.1f}s | {fmt_time(none):>14s} | "
              f"{fmt_time(ci1):>10s} | {fmt_time(ci2):>10s}")
    print("\nWithout checkpoints, recovery grows with the log; with them "
          "it stays bounded (Figure 3).")


if __name__ == "__main__":
    main()
