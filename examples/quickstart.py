#!/usr/bin/env python3
"""Quickstart: a simulated Open-Channel SSD with the OX-Block FTL.

Builds the full stack of the paper — NAND chips, OCSSD 2.0-style device,
OX media manager, OX-Block generic FTL — then exercises the block-device
API, kills the FTL (``kill -9`` style) and recovers.

Run:  python examples/quickstart.py
"""

from repro.ox import OXBlock
from repro.stack import StackSpec, build_stack
from repro.units import fmt_bytes, fmt_time


def main() -> None:
    # A small dual-plane TLC drive: 4 groups x 4 PUs, 96 KB write unit —
    # one spec declares the whole stack, build_stack wires it.
    stack = build_stack(StackSpec(
        name="quickstart",
        geometry={"num_groups": 4, "pus_per_group": 4,
                  "chunks_per_pu": 32, "pages_per_block": 24},
        ftl="oxblock", ftl_config={"checkpoint_interval": 5.0}))
    device, media, ftl = stack.device, stack.media, stack.ftl
    geometry = device.geometry
    print(f"device: {geometry.describe()}")
    print(f"capacity: {fmt_bytes(geometry.capacity_bytes)}, "
          f"write unit: {fmt_bytes(geometry.ws_min * geometry.sector_size)}")
    print("\nOX-Block formatted (checkpoint every 5 s of simulated time)")

    # The block-device API: 4 KB sectors, transactional writes up to 1 MB.
    sector = geometry.sector_size
    ftl.write(0, b"hello open-channel world".ljust(sector, b"\x00"))
    ftl.write(100, bytes(range(256)) * (sector // 256) * 8)   # 32 KB txn
    print(f"read lba 0   -> {ftl.read(0, 1)[:24]!r}")
    print(f"read lba 100 -> {ftl.read(100, 8)[:8]!r}... "
          f"({fmt_bytes(8 * sector)})")

    # Durability barrier, then a crash.
    ftl.flush()
    print("\nflushed; simulating `kill -9` of the OX process...")
    ftl.crash()

    recovered, report = OXBlock.recover(media, ftl.config)
    print(f"recovered in {fmt_time(report.duration)} "
          f"(checkpoint #{report.checkpoint_seq}, "
          f"{report.txns_applied} txns replayed, "
          f"{report.txns_dropped} dropped)")
    print(f"read lba 0 after recovery -> {recovered.read(0, 1)[:24]!r}")

    stats = device.controller.stats
    print(f"\ndevice totals: {stats.sectors_written} sectors written, "
          f"{stats.sectors_read} read, "
          f"{stats.sectors_read_from_cache} served from controller cache")


if __name__ == "__main__":
    main()
